#include "util/interval.h"

#include <gtest/gtest.h>

namespace histk {
namespace {

TEST(IntervalTest, EmptyByDefault) {
  Interval i;
  EXPECT_TRUE(i.empty());
  EXPECT_EQ(i.length(), 0);
}

TEST(IntervalTest, FullCoversDomain) {
  const Interval f = Interval::Full(10);
  EXPECT_EQ(f.lo, 0);
  EXPECT_EQ(f.hi, 9);
  EXPECT_EQ(f.length(), 10);
  EXPECT_FALSE(f.empty());
}

TEST(IntervalTest, SingletonLengthOne) {
  const Interval s(5, 5);
  EXPECT_EQ(s.length(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_FALSE(s.Contains(6));
}

TEST(IntervalTest, ContainsInterval) {
  const Interval outer(2, 8);
  EXPECT_TRUE(outer.Contains(Interval(2, 8)));
  EXPECT_TRUE(outer.Contains(Interval(3, 5)));
  EXPECT_FALSE(outer.Contains(Interval(1, 5)));
  EXPECT_FALSE(outer.Contains(Interval(5, 9)));
  EXPECT_TRUE(outer.Contains(Interval::Empty()));
}

TEST(IntervalTest, IntersectOverlapping) {
  EXPECT_EQ(Interval(2, 6).Intersect(Interval(4, 9)), Interval(4, 6));
  EXPECT_EQ(Interval(4, 9).Intersect(Interval(2, 6)), Interval(4, 6));
}

TEST(IntervalTest, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(Interval(2, 3).Intersect(Interval(5, 9)).empty());
  EXPECT_TRUE(Interval(5, 9).Intersect(Interval(2, 3)).empty());
}

TEST(IntervalTest, IntersectAdjacentTouchingPoint) {
  EXPECT_EQ(Interval(2, 5).Intersect(Interval(5, 9)), Interval(5, 5));
}

TEST(IntervalTest, IntersectsPredicateMatchesIntersect) {
  const Interval a(0, 4), b(4, 8), c(5, 8);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(Interval::Empty()));
}

TEST(IntervalTest, EmptyIntervalsCompareEqual) {
  EXPECT_EQ(Interval(3, 2), Interval::Empty());
  EXPECT_EQ(Interval(7, 1), Interval(0, -1));
}

TEST(IntervalTest, OrderingByLoThenHi) {
  EXPECT_LT(Interval(1, 5), Interval(2, 3));
  EXPECT_LT(Interval(1, 3), Interval(1, 5));
  EXPECT_LT(Interval::Empty(), Interval(0, 0));
}

TEST(IntervalTest, ToStringFormats) {
  EXPECT_EQ(Interval(2, 7).ToString(), "[2,7]");
  EXPECT_EQ(Interval::Empty().ToString(), "[]");
}

}  // namespace
}  // namespace histk
