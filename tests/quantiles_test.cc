#include "dist/quantiles.h"

#include <gtest/gtest.h>

#include "dist/generators.h"
#include "histogram/ops.h"

namespace histk {
namespace {

TEST(QuantilesTest, CdfIsMonotoneEndsAtOne) {
  const Distribution d = MakeZipf(32, 1.0);
  const auto cdf = Cdf(d);
  ASSERT_EQ(cdf.size(), 32u);
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(QuantilesTest, QuantileOfUniform) {
  const Distribution u = Distribution::Uniform(100);
  EXPECT_EQ(Quantile(u, 0.5), 49);
  EXPECT_EQ(Quantile(u, 0.01), 0);
  EXPECT_EQ(Quantile(u, 1.0), 99);
}

TEST(QuantilesTest, QuantileSkipsZeroMass) {
  const Distribution d = Distribution::FromWeights({0, 0, 1, 1, 0});
  EXPECT_EQ(Quantile(d, 0.0), 2);
  EXPECT_EQ(Quantile(d, 0.5), 2);
  EXPECT_EQ(Quantile(d, 0.75), 3);
  EXPECT_EQ(Quantile(d, 1.0), 3);
}

TEST(QuantilesTest, QuantileOfPointMass) {
  const Distribution d = Distribution::PointMass(64, 17);
  for (double q : {0.0, 0.1, 0.5, 1.0}) EXPECT_EQ(Quantile(d, q), 17);
}

TEST(QuantilesTest, EquiDepthEndsBalanceMass) {
  const Distribution d = MakeZipf(256, 1.0);
  const auto ends = EquiDepthEnds(d, 8);
  EXPECT_LE(ends.size(), 8u);
  EXPECT_EQ(ends.back(), 255);
  // Equi-depth invariant: the prefix through the j-th end holds at least
  // (j+1)/k of the mass (single heavy elements may overshoot a cut, so the
  // per-piece mass can dip below 1/k — only the prefix bound holds).
  for (size_t j = 0; j + 1 < ends.size(); ++j) {
    EXPECT_GE(d.Weight(Interval(0, ends[j])),
              static_cast<double>(j + 1) / 8.0 - 1e-12)
        << "j=" << j;
  }
}

TEST(QuantilesTest, EquiDepthOnUniformIsEquiWidth) {
  const auto ends = EquiDepthEnds(Distribution::Uniform(100), 4);
  EXPECT_EQ(ends, (std::vector<int64_t>{24, 49, 74, 99}));
}

TEST(QuantilesTest, KsDistanceBasics) {
  const Distribution a = Distribution::FromPmf({0.5, 0.5, 0.0, 0.0});
  const Distribution b = Distribution::FromPmf({0.0, 0.0, 0.5, 0.5});
  EXPECT_NEAR(KsDistance(a, b), 1.0, 1e-12);
  EXPECT_NEAR(KsDistance(a, a), 0.0, 1e-15);
  // KS <= L1/... KS is at most total variation = L1/2.
  const Distribution c = Distribution::FromPmf({0.25, 0.25, 0.25, 0.25});
  EXPECT_LE(KsDistance(a, c), a.L1DistanceTo(c) / 2.0 + 1e-12);
}

}  // namespace
}  // namespace histk
