// Dense/bucket backend parity: the same pmf, built through both backends,
// must answer every query identically (up to fp normalization residue),
// and the sharded DrawMany path must be byte-identical at any shard count.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distribution.h"
#include "dist/generators.h"
#include "dist/quantiles.h"
#include "dist/sampler.h"
#include "histogram/tiling.h"
#include "util/rng.h"

namespace histk {
namespace {

/// A random run layout with occasional zero-mass buckets.
struct RunSpec {
  int64_t n = 0;
  std::vector<int64_t> ends;
  std::vector<double> weights;  // per-bucket relative masses
};

RunSpec RandomRuns(Rng& rng) {
  RunSpec spec;
  spec.n = 50 + static_cast<int64_t>(rng.UniformInt(2000));
  const int64_t k =
      1 + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(
              std::min<int64_t>(20, spec.n))));
  spec.ends = rng.SampleDistinct(spec.n - 1, k - 1);
  spec.ends.push_back(spec.n - 1);
  spec.weights.resize(static_cast<size_t>(k));
  bool any_positive = false;
  for (auto& w : spec.weights) {
    w = rng.Bernoulli(0.2) ? 0.0 : 0.05 + rng.NextDouble();
    any_positive = any_positive || w > 0.0;
  }
  if (!any_positive) spec.weights.back() = 1.0;
  return spec;
}

/// The same pmf through both backends.
struct Pair {
  Distribution dense;
  Distribution bucket;
};

Pair BuildPair(const RunSpec& spec) {
  std::vector<double> w(static_cast<size_t>(spec.n));
  int64_t lo = 0;
  for (size_t j = 0; j < spec.ends.size(); ++j) {
    const double density =
        spec.weights[j] / static_cast<double>(spec.ends[j] - lo + 1);
    for (int64_t i = lo; i <= spec.ends[j]; ++i) w[static_cast<size_t>(i)] = density;
    lo = spec.ends[j] + 1;
  }
  return {Distribution::FromWeights(std::move(w)),
          Distribution::FromBucketWeights(spec.n, spec.ends, spec.weights)};
}

Interval RandomInterval(int64_t n, Rng& rng) {
  // Mix of in-domain, clipped, and empty intervals.
  const int64_t a = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n + 20))) - 10;
  const int64_t b = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(n + 20))) - 10;
  return Interval(std::min(a, b), std::max(a, b));
}

TEST(BackendParityTest, PointAndIntervalQueriesAgree) {
  Rng rng(0xB0B1);
  for (int trial = 0; trial < 30; ++trial) {
    const RunSpec spec = RandomRuns(rng);
    const Pair p = BuildPair(spec);
    ASSERT_FALSE(p.dense.is_bucketed());
    ASSERT_TRUE(p.bucket.is_bucketed());
    ASSERT_EQ(p.dense.n(), p.bucket.n());
    for (int64_t i = 0; i < spec.n; i += 1 + spec.n / 97) {
      EXPECT_NEAR(p.dense.p(i), p.bucket.p(i), 1e-15) << "i=" << i;
    }
    EXPECT_NEAR(p.dense.L2NormSquared(), p.bucket.L2NormSquared(), 1e-12);
    for (int q = 0; q < 60; ++q) {
      const Interval I = RandomInterval(spec.n, rng);
      EXPECT_NEAR(p.dense.Weight(I), p.bucket.Weight(I), 1e-12) << I.ToString();
      EXPECT_NEAR(p.dense.SumSquares(I), p.bucket.SumSquares(I), 1e-12);
      EXPECT_NEAR(p.dense.IntervalSse(I), p.bucket.IntervalSse(I), 1e-12);
      EXPECT_EQ(p.dense.IsFlat(I, 1e-9), p.bucket.IsFlat(I, 1e-9)) << I.ToString();
      if (!I.Intersect(Interval::Full(spec.n)).empty()) {
        EXPECT_NEAR(p.dense.IntervalMean(I), p.bucket.IntervalMean(I), 1e-12);
      }
    }
  }
}

TEST(BackendParityTest, RestrictAgrees) {
  Rng rng(0xB0B2);
  for (int trial = 0; trial < 20; ++trial) {
    const RunSpec spec = RandomRuns(rng);
    const Pair p = BuildPair(spec);
    for (int q = 0; q < 10; ++q) {
      const int64_t a = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(spec.n)));
      const int64_t b = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(spec.n)));
      const Interval I(std::min(a, b), std::max(a, b));
      if (p.dense.Weight(I) <= 0.0) continue;
      const Distribution rd = p.dense.Restrict(I);
      const Distribution rb = p.bucket.Restrict(I);
      ASSERT_EQ(rd.n(), rb.n());
      EXPECT_TRUE(rb.is_bucketed());
      for (int64_t i = 0; i < rd.n(); i += 1 + rd.n() / 53) {
        EXPECT_NEAR(rd.p(i), rb.p(i), 1e-12);
      }
    }
  }
}

TEST(BackendParityTest, DistancesAgree) {
  Rng rng(0xB0B3);
  for (int trial = 0; trial < 20; ++trial) {
    RunSpec sa = RandomRuns(rng);
    RunSpec sb = RandomRuns(rng);
    sb.n = sa.n;  // distances need matching domains
    sb.ends = rng.SampleDistinct(sb.n - 1, static_cast<int64_t>(sb.weights.size()) - 1);
    sb.ends.push_back(sb.n - 1);
    const Pair a = BuildPair(sa);
    const Pair b = BuildPair(sb);
    EXPECT_NEAR(a.dense.L1DistanceTo(b.dense), a.bucket.L1DistanceTo(b.bucket), 1e-12);
    EXPECT_NEAR(a.dense.L2DistanceTo(b.dense), a.bucket.L2DistanceTo(b.bucket), 1e-12);
    // Mixed backends hit the run-walk fallbacks.
    EXPECT_NEAR(a.dense.L1DistanceTo(b.bucket), a.dense.L1DistanceTo(b.dense), 1e-12);
    EXPECT_NEAR(a.bucket.L2DistanceTo(b.dense), a.dense.L2DistanceTo(b.dense), 1e-12);
    EXPECT_NEAR(KsDistance(a.dense, b.dense), KsDistance(a.bucket, b.bucket), 1e-12);
    EXPECT_NEAR(KsDistance(a.dense, b.bucket), KsDistance(a.dense, b.dense), 1e-12);
  }
}

TEST(BackendParityTest, TilingHistogramErrorsAgree) {
  Rng rng(0xB0BA);
  for (int trial = 0; trial < 10; ++trial) {
    const RunSpec spec = RandomRuns(rng);
    const Pair p = BuildPair(spec);
    // An unrelated histogram over the same domain.
    const int64_t hk = 1 + static_cast<int64_t>(rng.UniformInt(6));
    std::vector<int64_t> hends = rng.SampleDistinct(spec.n - 1, hk - 1);
    hends.push_back(spec.n - 1);
    std::vector<double> hvals(static_cast<size_t>(hk));
    for (auto& v : hvals) v = rng.NextDouble() / static_cast<double>(spec.n);
    const TilingHistogram h = TilingHistogram::FromRightEnds(spec.n, hends, hvals);
    EXPECT_NEAR(h.L1ErrorTo(p.dense), h.L1ErrorTo(p.bucket), 1e-12);
    EXPECT_NEAR(h.L2SquaredErrorTo(p.dense), h.L2SquaredErrorTo(p.bucket), 1e-12);
    EXPECT_NEAR(p.dense.L1DistanceToValues(h.ToValues()),
                p.bucket.L1DistanceToValues(h.ToValues()), 1e-12);
  }
}

TEST(BackendParityTest, CdfAndQuantilesAgree) {
  Rng rng(0xB0B4);
  for (int trial = 0; trial < 20; ++trial) {
    const RunSpec spec = RandomRuns(rng);
    const Pair p = BuildPair(spec);
    for (int64_t i = 0; i < spec.n; i += 1 + spec.n / 67) {
      EXPECT_NEAR(CdfAt(p.dense, i), CdfAt(p.bucket, i), 1e-12);
    }
    for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0, rng.NextDouble()}) {
      const int64_t qd = Quantile(p.dense, q);
      const int64_t qb = Quantile(p.bucket, q);
      EXPECT_GT(p.dense.p(qd), 0.0);
      EXPECT_GT(p.bucket.p(qb), 0.0);
      // The two backends may disagree only when q lands within fp residue
      // of a cdf step; the picked elements then carry the same cdf value.
      if (qd != qb) {
        EXPECT_NEAR(CdfAt(p.dense, qd), CdfAt(p.dense, qb), 1e-9)
            << "q=" << q << " qd=" << qd << " qb=" << qb;
      }
    }
    const auto ed = EquiDepthEnds(p.dense, 8);
    const auto eb = EquiDepthEnds(p.bucket, 8);
    EXPECT_EQ(ed, eb);
  }
}

TEST(BackendParityTest, BucketAliasSamplerMatchesExactMasses) {
  Rng rng(0xB0B5);
  const RunSpec spec = RandomRuns(rng);
  const Pair p = BuildPair(spec);
  const AliasSampler sampler(p.bucket);
  Rng draw_rng(77);
  const auto draws = sampler.DrawMany(200000, draw_rng);
  // Per-bucket empirical mass tracks the exact mass, and zero-density
  // elements are never produced.
  std::vector<int64_t> counts(spec.ends.size(), 0);
  for (int64_t v : draws) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, spec.n);
    EXPECT_GT(p.bucket.p(v), 0.0) << "sampled a zero-probability element";
    const auto j = static_cast<size_t>(
        std::lower_bound(spec.ends.begin(), spec.ends.end(), v) - spec.ends.begin());
    ++counts[j];
  }
  int64_t lo = 0;
  for (size_t j = 0; j < spec.ends.size(); ++j) {
    const double exact = p.bucket.Weight(Interval(lo, spec.ends[j]));
    const double empirical =
        static_cast<double>(counts[j]) / static_cast<double>(draws.size());
    EXPECT_NEAR(empirical, exact, 0.01) << "bucket " << j;
    lo = spec.ends[j] + 1;
  }
}

TEST(BackendParityTest, CdfSamplerDrawsAgreeAcrossBackends) {
  Rng rng(0xB0B6);
  for (int trial = 0; trial < 5; ++trial) {
    const RunSpec spec = RandomRuns(rng);
    const Pair p = BuildPair(spec);
    const CdfSampler sd(p.dense);
    const CdfSampler sb(p.bucket);
    Rng r1(100 + trial), r2(100 + trial);
    const auto da = sd.DrawMany(20000, r1);
    const auto db = sb.DrawMany(20000, r2);
    // Identical uniforms; the backends may round differently only when a
    // uniform lands within an ulp of a bucket boundary.
    int64_t mismatches = 0;
    for (size_t i = 0; i < da.size(); ++i) {
      if (da[i] != db[i]) {
        ++mismatches;
        EXPECT_LE(std::llabs(da[i] - db[i]), 1);
      }
    }
    EXPECT_LE(mismatches, 20);
  }
}

TEST(BackendParityTest, DrawManyShardedIsByteIdenticalAcrossShardCounts) {
  Rng rng(0xB0B7);
  const RunSpec spec = RandomRuns(rng);
  const Pair p = BuildPair(spec);
  for (const Distribution* d : {&p.dense, &p.bucket}) {
    const AliasSampler sampler(*d);
    // > 3 chunks so several streams and the tail chunk are exercised.
    const int64_t m = 3 * Sampler::kShardChunk + 12345;
    Rng r1(42), r2(42), r8(42), r0(42);
    const auto out1 = sampler.DrawManySharded(m, r1, 1);
    const auto out2 = sampler.DrawManySharded(m, r2, 2);
    const auto out8 = sampler.DrawManySharded(m, r8, 8);
    const auto out_auto = sampler.DrawManySharded(m, r0);
    EXPECT_EQ(out1, out2);
    EXPECT_EQ(out1, out8);
    EXPECT_EQ(out1, out_auto);
    // And the shard streams are a function of the rng state: a different
    // seed yields a different batch.
    Rng other(43);
    EXPECT_NE(out1, sampler.DrawManySharded(m, other, 4));
  }
}

TEST(BackendParityTest, HugeDomainConstructsAndAnswersInBucketTime) {
  const int64_t n = int64_t{1} << 30;
  const int64_t k = 100;
  Rng rng(0xB0B8);
  const HistogramSpec spec = MakeRandomKHistogram(n, k, rng, 25.0);
  const Distribution& d = spec.dist;
  ASSERT_TRUE(d.is_bucketed());
  EXPECT_EQ(d.num_buckets(), k);
  EXPECT_NEAR(d.Weight(Interval::Full(n)), 1.0, 1e-9);
  EXPECT_GT(d.L2NormSquared(), 0.0);

  const int64_t mid = Quantile(d, 0.5);
  EXPECT_GE(mid, 0);
  EXPECT_LT(mid, n);
  EXPECT_NEAR(CdfAt(d, mid), 0.5, 1e-3);
  const auto ends = EquiDepthEnds(d, 16);
  EXPECT_LE(ends.size(), 16u);
  EXPECT_EQ(ends.back(), n - 1);

  const Distribution r = d.Restrict(Interval(n / 4, n / 2));
  EXPECT_TRUE(r.is_bucketed());
  EXPECT_NEAR(r.Weight(Interval::Full(r.n())), 1.0, 1e-9);

  EXPECT_NEAR(d.L1DistanceTo(Distribution::Uniform(n)),
              Distribution::Uniform(n).L1DistanceTo(d), 1e-12);

  const AliasSampler sampler(d);
  Rng draw_rng(7);
  for (int64_t v : sampler.DrawMany(10000, draw_rng)) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    EXPECT_GT(d.p(v), 0.0);
  }
  Rng ra(5), rb(5);
  EXPECT_EQ(sampler.DrawManySharded(100000, ra, 1),
            sampler.DrawManySharded(100000, rb, 8));
}

TEST(BackendParityTest, AutoBackendSelection) {
  EXPECT_FALSE(Distribution::Uniform(1024).is_bucketed());
  EXPECT_TRUE(Distribution::Uniform((int64_t{1} << 21) + 1).is_bucketed());
  EXPECT_FALSE(Distribution::PointMass(1024, 7).is_bucketed());
  const Distribution pm = Distribution::PointMass((int64_t{1} << 24), 12345);
  EXPECT_TRUE(pm.is_bucketed());
  EXPECT_DOUBLE_EQ(pm.p(12345), 1.0);
  EXPECT_DOUBLE_EQ(pm.p(12344), 0.0);
  EXPECT_DOUBLE_EQ(pm.Weight(Interval(12345, 12345)), 1.0);
}

TEST(BackendParityTest, TryFactoriesRejectMalformedRuns) {
  // Non-ascending ends.
  EXPECT_FALSE(Distribution::TryFromBucketPmf(10, {5, 5, 9}, {0.3, 0.3, 0.4}).has_value());
  // Final end != n-1.
  EXPECT_FALSE(Distribution::TryFromBucketPmf(10, {3, 8}, {0.5, 0.5}).has_value());
  // End outside the domain.
  EXPECT_FALSE(Distribution::TryFromBucketPmf(10, {4, 10}, {0.5, 0.5}).has_value());
  // Arity mismatch.
  EXPECT_FALSE(Distribution::TryFromBucketPmf(10, {4, 9}, {1.0}).has_value());
  // Negative / non-finite masses.
  EXPECT_FALSE(Distribution::TryFromBucketPmf(10, {4, 9}, {-0.1, 1.1}).has_value());
  // Mass not summing to 1.
  EXPECT_FALSE(Distribution::TryFromBucketPmf(10, {4, 9}, {0.3, 0.3}).has_value());
  // All-zero weights.
  EXPECT_FALSE(Distribution::TryFromBucketWeights(10, {4, 9}, {0.0, 0.0}).has_value());
  // Valid input round-trips.
  const auto d = Distribution::TryFromBucketPmf(10, {4, 9}, {0.25, 0.75});
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->is_bucketed());
  EXPECT_NEAR(d->p(0), 0.05, 1e-15);
  EXPECT_NEAR(d->p(9), 0.15, 1e-15);
}

TEST(BackendParityDeathTest, BucketFactoryAborts) {
  EXPECT_DEATH(Distribution::FromBucketWeights(10, {4, 8}, {1.0, 1.0}),
               "bucket runs");
  EXPECT_DEATH(Distribution::FromBucketPmf(10, {4, 9}, {0.3, 0.3}),
               "summing to 1");
}

}  // namespace
}  // namespace histk
