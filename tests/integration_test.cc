// End-to-end pipelines combining learner, testers, baselines, and
// generators — the workflows the examples and benches are built from.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/histk.h"

namespace histk {
namespace {

TEST(IntegrationTest, LearnThenAnswerRangeQueries) {
  // The DB motivation: approximate range-count ("selectivity") queries
  // from the learned histogram instead of the raw data.
  Rng rng(601);
  const Distribution ages =
      MakeGaussianMixture(128, {{0.3, 0.1, 2.0}, {0.62, 0.06, 1.0}}, 0.05);
  const AliasSampler sampler(ages);

  LearnOptions opt;
  opt.k = 8;
  opt.eps = 0.15;
  const LearnResult res = LearnHistogram(sampler, opt, rng);

  // Random range queries: histogram mass vs true weight.
  Rng qrng(602);
  double worst = 0.0;
  for (int q = 0; q < 50; ++q) {
    const int64_t lo = qrng.UniformInRange(0, 127);
    const int64_t hi = qrng.UniformInRange(lo, 127);
    const double est = res.tiling.Mass(Interval(lo, hi));
    const double truth = ages.Weight(Interval(lo, hi));
    worst = std::max(worst, std::fabs(est - truth));
  }
  EXPECT_LT(worst, 0.08);
}

TEST(IntegrationTest, LearnedHistogramCompetesWithBaselinesOnPiecewiseData) {
  Rng rng(603);
  const HistogramSpec spec = MakeRandomKHistogram(128, 6, rng, 30.0);
  const AliasSampler sampler(spec.dist);

  LearnOptions opt;
  opt.k = 6;
  opt.eps = 0.15;
  const LearnResult learned = LearnHistogram(sampler, opt, rng);
  const double learned_err = learned.tiling.L2SquaredErrorTo(spec.dist);

  // Equal-budget baselines.
  Rng brng(604);
  const SampleSet budget = SampleSet::Draw(sampler, learned.total_samples, brng);
  const double ew = EquiWidthFromSamples(6, budget).L2SquaredErrorTo(spec.dist);
  const double ed = EquiDepthFromSamples(6, budget).L2SquaredErrorTo(spec.dist);

  // On exact k-histogram data the boundary-aware learner should beat the
  // fixed-boundary baselines decisively.
  EXPECT_LT(learned_err, ew);
  EXPECT_LT(learned_err, ed);
}

TEST(IntegrationTest, TesterSeparatesYesFromFar) {
  TestConfig cfg;
  cfg.k = 3;
  cfg.eps = 0.3;
  cfg.norm = Norm::kL2;
  cfg.r_override = 9;

  Rng rng(605);
  const HistogramSpec yes = MakeRandomKHistogram(256, 3, rng, 10.0);
  const auto no = MakeL2FarSpikes(256, 3, 0.3);
  ASSERT_TRUE(no.has_value());

  const AliasSampler yes_sampler(yes.dist);
  const AliasSampler no_sampler(no->dist);
  int yes_accepts = 0, no_accepts = 0;
  for (int t = 0; t < 8; ++t) {
    yes_accepts += TestKHistogram(yes_sampler, cfg, rng).accepted;
    no_accepts += TestKHistogram(no_sampler, cfg, rng).accepted;
  }
  EXPECT_GE(yes_accepts, 6);
  EXPECT_LE(no_accepts, 2);
}

TEST(IntegrationTest, TesterThenLearnerPipeline) {
  // Realistic auditing flow: first test whether the data is (close to) a
  // small histogram; if accepted, learn one and verify its quality.
  Rng rng(606);
  const HistogramSpec spec = MakeRandomKHistogram(128, 4, rng, 15.0);
  const AliasSampler sampler(spec.dist);

  TestConfig tcfg;
  tcfg.k = 4;
  tcfg.eps = 0.3;
  tcfg.norm = Norm::kL2;
  tcfg.r_override = 9;
  const TestOutcome outcome = TestKHistogram(sampler, tcfg, rng);
  ASSERT_TRUE(outcome.accepted);

  LearnOptions lopt;
  lopt.k = 4;
  lopt.eps = 0.2;
  const LearnResult res = LearnHistogram(sampler, lopt, rng);
  EXPECT_LT(res.tiling.L2SquaredErrorTo(spec.dist), 0.01);
}

TEST(IntegrationTest, LowerBoundPairFoolsWeightOnlyStatistics) {
  // Any statistic that only looks at k-partition interval weights sees
  // identical values for YES and NO — sanity-check the hard pair end to
  // end through the sampling machinery.
  Rng rng(607);
  const LowerBoundPair pair = MakeLowerBoundPair(256, 4, rng);
  const AliasSampler sy(pair.yes);
  const AliasSampler sn(pair.no);
  const SampleSet ssy = SampleSet::Draw(sy, 4000, rng);
  const SampleSet ssn = SampleSet::Draw(sn, 4000, rng);
  for (int64_t j = 0; j < 4; ++j) {
    const Interval I(256 * j / 4, 256 * (j + 1) / 4 - 1);
    const double fy = static_cast<double>(ssy.Count(I)) / 4000.0;
    const double fn = static_cast<double>(ssn.Count(I)) / 4000.0;
    EXPECT_NEAR(fy, fn, 0.05) << I.ToString();
  }
}

TEST(IntegrationTest, UmbrellaHeaderExposesEverything) {
  // Compile-time check that histk.h covers the public API surface used in
  // this file; the runtime assertion is trivial.
  SUCCEED();
}

}  // namespace
}  // namespace histk
