// ConcurrentHistogram / HistogramSnapshot (stream/concurrent_histogram.h):
// recording, quantile/cdf queries, commutative merges, windowed deltas and
// decay, the wire format (round-trip and rejection diagnostics), and the
// ToBucketDistribution bridge through to a full Engine learn — the whole
// telemetry path minus the multithreaded hammering, which lives in
// concurrency_stress_test.cc under the tsan preset.
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/telemetry.h"
#include "stream/concurrent_histogram.h"
#include "stream/log_bucket.h"
#include "util/status.h"

namespace histk {
namespace {

// b = 7 keeps values below 128 exact (denormal region), which makes every
// expectation in these tests closed-form.
constexpr int kBits = kLogBucketDefaultMantissaBits;

HistogramSnapshot SmallSnapshot() {
  ConcurrentHistogram hist(kBits);
  // 10 zeros, 20 ones, 30 twos, 40 hundreds: total 100, all exact buckets.
  hist.Record(0, 10);
  hist.Record(1, 20);
  hist.Record(2, 30);
  hist.Record(100, 40);
  return hist.Snapshot();
}

TEST(ConcurrentHistogramTest, RecordCountsExactlyInTheDenormalRegion) {
  const HistogramSnapshot snap = SmallSnapshot();
  EXPECT_EQ(snap.TotalCount(), 100u);
  EXPECT_EQ(snap.OccupiedBuckets(), 4);
  EXPECT_EQ(snap.counts()[0], 10u);
  EXPECT_EQ(snap.counts()[1], 20u);
  EXPECT_EQ(snap.counts()[2], 30u);
  EXPECT_EQ(snap.counts()[100], 40u);
  EXPECT_EQ(snap.MinValueBound().value(), 0u);
  EXPECT_EQ(snap.MaxValueBound().value(), 100u);
}

TEST(ConcurrentHistogramTest, EmptySnapshotHasNoBounds) {
  const ConcurrentHistogram hist(kBits);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.TotalCount(), 0u);
  EXPECT_FALSE(snap.MinValueBound().has_value());
  EXPECT_FALSE(snap.MaxValueBound().has_value());
  EXPECT_EQ(snap.CdfAt(12345), 0.0);
  EXPECT_FALSE(snap.ToBucketDistribution().ok());
}

TEST(ConcurrentHistogramTest, CdfAndQuantilesOnExactBuckets) {
  const HistogramSnapshot snap = SmallSnapshot();
  EXPECT_DOUBLE_EQ(snap.CdfAt(0), 0.10);
  EXPECT_DOUBLE_EQ(snap.CdfAt(1), 0.30);
  EXPECT_DOUBLE_EQ(snap.CdfAt(2), 0.60);
  EXPECT_DOUBLE_EQ(snap.CdfAt(99), 0.60);
  EXPECT_DOUBLE_EQ(snap.CdfAt(100), 1.0);
  EXPECT_DOUBLE_EQ(snap.CdfAt(uint64_t{1} << 40), 1.0);

  EXPECT_EQ(snap.Quantile(0.0), 0u);
  EXPECT_EQ(snap.Quantile(0.05), 0u);
  EXPECT_EQ(snap.Quantile(0.25), 1u);
  EXPECT_EQ(snap.Quantile(0.5), 2u);
  EXPECT_EQ(snap.Quantile(0.99), 100u);
  EXPECT_EQ(snap.Quantile(1.0), 100u);
}

// Above the denormal region the quantile is only bucket-accurate: within
// the codec's relative error of the true stream quantile.
TEST(ConcurrentHistogramTest, QuantileWithinRelativeErrorOnWideValues) {
  ConcurrentHistogram hist(kBits);
  const uint64_t kMedian = uint64_t{3} << 33;  // well into the geometric range
  hist.Record(kMedian, 1000);
  const HistogramSnapshot snap = hist.Snapshot();
  const double err = LogBucketMaxRelativeError(kBits);
  for (double q : {0.01, 0.5, 0.99}) {
    const double got = static_cast<double>(snap.Quantile(q));
    EXPECT_NEAR(got, static_cast<double>(kMedian),
                2.0 * err * static_cast<double>(kMedian))
        << "q=" << q;
  }
}

TEST(ConcurrentHistogramTest, MergeIsCommutativeAndConservesCounts) {
  ConcurrentHistogram h1(kBits), h2(kBits);
  h1.Record(5, 7);
  h1.Record(1000, 3);
  h2.Record(5, 2);
  h2.Record(uint64_t{1} << 50, 11);

  HistogramSnapshot ab = h1.Snapshot();
  ASSERT_TRUE(ab.Merge(h2.Snapshot()).ok());
  HistogramSnapshot ba = h2.Snapshot();
  ASSERT_TRUE(ba.Merge(h1.Snapshot()).ok());

  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.TotalCount(), 23u);
  EXPECT_EQ(ab.counts()[LogBucketKey(5, kBits)], 9u);
}

TEST(ConcurrentHistogramTest, DeltaSinceIsTheWindowBetweenSnapshots) {
  ConcurrentHistogram hist(kBits);
  hist.Record(10, 4);
  const HistogramSnapshot before = hist.Snapshot();
  hist.Record(10, 2);
  hist.Record(99, 5);
  const HistogramSnapshot after = hist.Snapshot();

  const HistogramSnapshot window = after.DeltaSince(before).value();
  EXPECT_EQ(window.TotalCount(), 7u);
  EXPECT_EQ(window.counts()[10], 2u);
  EXPECT_EQ(window.counts()[99], 5u);
  // before + window == after: the decomposition is exact.
  HistogramSnapshot recombined = before;
  ASSERT_TRUE(recombined.Merge(window).ok());
  EXPECT_EQ(recombined, after);
}

TEST(ConcurrentHistogramTest, DecayedHalvesCountsWithRounding) {
  const HistogramSnapshot snap = SmallSnapshot();
  const HistogramSnapshot half = snap.Decayed(0.5).value();
  EXPECT_EQ(half.counts()[0], 5u);
  EXPECT_EQ(half.counts()[1], 10u);
  EXPECT_EQ(half.counts()[2], 15u);
  EXPECT_EQ(half.counts()[100], 20u);
  EXPECT_EQ(half.TotalCount(), 50u);
  EXPECT_EQ(snap.Decayed(0.0).value().TotalCount(), 0u);
  EXPECT_EQ(snap.Decayed(1.0).value(), snap);
}

// ------------------------------------------------------------ wire format

TEST(ConcurrentHistogramTest, WireFormatRoundTrips) {
  ConcurrentHistogram hist(kBits);
  hist.Record(0, 1);
  hist.Record(7, 12);
  hist.Record(1 << 20, 5);
  hist.Record(uint64_t{1} << 55, 2);
  const HistogramSnapshot snap = hist.Snapshot();

  std::ostringstream out;
  WriteSnapshot(out, snap);
  std::istringstream in(out.str());
  const Result<HistogramSnapshot> parsed = ParseSnapshot(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, snap);

  // The convenience wrapper agrees.
  std::istringstream in2(out.str());
  const std::optional<HistogramSnapshot> read = ReadSnapshot(in2);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, snap);
}

void ExpectParseError(const std::string& text, const std::string& needle) {
  std::istringstream in(text);
  const Result<HistogramSnapshot> parsed = ParseSnapshot(in);
  ASSERT_FALSE(parsed.ok()) << "accepted: " << text;
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_NE(parsed.status().ToString().find("line "), std::string::npos)
      << parsed.status().ToString();
  EXPECT_NE(parsed.status().ToString().find(needle), std::string::npos)
      << parsed.status().ToString();
}

TEST(ConcurrentHistogramTest, ParserRejectsMalformedSketches) {
  ExpectParseError("not-a-sketch v1\n", "format magic");
  ExpectParseError("histk-telemetry-histogram v2\n", "format version");
  ExpectParseError(
      "histk-telemetry-histogram v1\nmantissa_bits 77 buckets 0 total 0\n",
      "mantissa_bits");
  ExpectParseError(
      "histk-telemetry-histogram v1\nmantissa_bits 7 buckets 2 total 5\n"
      "9 3\n4 2\n",
      "ascending");
  ExpectParseError(
      "histk-telemetry-histogram v1\nmantissa_bits 7 buckets 1 total 5\n"
      "3 4\n",
      "does not equal the sum");
  ExpectParseError(
      "histk-telemetry-histogram v1\nmantissa_bits 7 buckets 2 total 5\n"
      "3 5\n",
      "unexpected end of input");
  ExpectParseError(
      "histk-telemetry-histogram v1\nmantissa_bits 7 buckets 1 total 0\n"
      "3 0\n",
      "counts must be >= 1");
}

TEST(ConcurrentHistogramTest, JsonCarriesTheBucketRecords) {
  const HistogramSnapshot snap = SmallSnapshot();
  std::ostringstream out;
  WriteSnapshotJson(out, snap);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"format\": \"histk-telemetry-histogram\""),
            std::string::npos);
  EXPECT_NE(json.find("\"total\": 100"), std::string::npos);
  EXPECT_NE(json.find("{\"key\": 100, \"lo\": 100, \"hi\": 100, \"count\": 40}"),
            std::string::npos);
}

// ------------------------------------------------------------ the bridge

TEST(ConcurrentHistogramTest, BridgeIsExactOnOccupiedBuckets) {
  const HistogramSnapshot snap = SmallSnapshot();
  const Result<Distribution> bridged = snap.ToBucketDistribution();
  ASSERT_TRUE(bridged.ok()) << bridged.status().ToString();
  const Distribution& d = *bridged;
  ASSERT_EQ(d.n(), 101);  // MaxValueBound + 1
  // Denormal buckets are single values: the bridged pmf is the empirical
  // distribution itself.
  EXPECT_NEAR(d.p(0), 0.10, 1e-12);
  EXPECT_NEAR(d.p(1), 0.20, 1e-12);
  EXPECT_NEAR(d.p(2), 0.30, 1e-12);
  EXPECT_NEAR(d.p(100), 0.40, 1e-12);
  EXPECT_NEAR(d.p(50), 0.0, 1e-12);  // gap run carries zero mass
}

TEST(ConcurrentHistogramTest, BridgeSpreadsWideBucketsUniformly) {
  ConcurrentHistogram hist(kBits);
  const uint64_t v = 1 << 20;
  hist.Record(v, 10);
  const HistogramSnapshot snap = hist.Snapshot();
  const Result<Distribution> bridged = snap.ToBucketDistribution();
  ASSERT_TRUE(bridged.ok());
  const uint32_t key = LogBucketKey(v, kBits);
  const uint64_t lo = LogBucketLow(key, kBits);
  const uint64_t hi = LogBucketHigh(key, kBits);
  ASSERT_EQ(bridged->n(), static_cast<int64_t>(hi) + 1);
  const double per_element = 1.0 / (static_cast<double>(hi - lo) + 1.0);
  EXPECT_NEAR(bridged->p(static_cast<int64_t>(lo)), per_element, 1e-12);
  EXPECT_NEAR(bridged->p(static_cast<int64_t>(hi)), per_element, 1e-12);
  EXPECT_NEAR(bridged->p(static_cast<int64_t>(lo) - 1), 0.0, 1e-12);
}

TEST(ConcurrentHistogramTest, BridgeRejectsRangesBeyondInt64) {
  ConcurrentHistogram hist(kBits);
  hist.Record(~uint64_t{0}, 1);  // last bucket ends at 2^64 - 1
  const Result<Distribution> bridged = hist.Snapshot().ToBucketDistribution();
  ASSERT_FALSE(bridged.ok());
  EXPECT_EQ(bridged.status().code(), StatusCode::kInvalidArgument);
}

// End-to-end: ingest -> snapshot -> TelemetrySession -> Engine learn. The
// learner sees the bridged telemetry as its oracle AND its truth, so the
// report must come back complete with a valid tiling.
TEST(ConcurrentHistogramTest, TelemetrySessionRunsEngineLearn) {
  ConcurrentHistogram hist(kBits);
  // A 2-piece shape: heavy mass on [0, 63], light on [64, 99].
  for (uint64_t v = 0; v < 64; ++v) hist.Record(v, 30);
  for (uint64_t v = 64; v < 100; ++v) hist.Record(v, 5);

  const Result<TelemetrySession> session =
      TelemetrySession::FromSnapshot(hist.Snapshot());
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->n(), 100);

  LearnSpec spec;
  spec.seed = 21;
  spec.options.k = 2;
  spec.options.eps = 0.2;
  const Result<Report> report = session->Run(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->outcome, TaskOutcome::kOk);
  ASSERT_TRUE(report->learn.has_value());
  EXPECT_GE(report->learn->tiling.k(), 1);
  EXPECT_EQ(report->learn->tiling.n(), 100);
}

// The snapshot is a pure function of what was recorded, not of the shard
// layout: any shard count, any thread assignment, same snapshot.
TEST(ConcurrentHistogramTest, SnapshotIndependentOfShardCountAndThreads) {
  auto record_all = [](ConcurrentHistogram& hist, int threads) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&hist, t, threads] {
        for (uint64_t v = static_cast<uint64_t>(t); v < 5000;
             v += static_cast<uint64_t>(threads)) {
          hist.Record(v * v);  // spread across denormal + geometric regions
        }
      });
    }
    for (std::thread& th : pool) th.join();
  };

  ConcurrentHistogram reference(kBits, /*num_shards=*/1);
  record_all(reference, 1);
  const HistogramSnapshot expected = reference.Snapshot();

  for (int shards : {1, 2, 8, 64}) {
    for (int threads : {1, 3, 8}) {
      ConcurrentHistogram hist(kBits, shards);
      record_all(hist, threads);
      EXPECT_EQ(hist.Snapshot(), expected)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace histk
