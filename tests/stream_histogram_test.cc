#include "stream/stream_histogram.h"

#include <gtest/gtest.h>

#include "baseline/voptimal_dp.h"
#include "dist/generators.h"
#include "dist/sampler.h"

namespace histk {
namespace {

// Feeds `stream_len` draws from d into a builder.
StreamHistogramBuilder BuildFrom(const Distribution& d, int64_t stream_len,
                                 const StreamHistogramOptions& opt, uint64_t seed) {
  StreamHistogramBuilder builder(d.n(), opt);
  const AliasSampler sampler(d);
  Rng rng(seed);
  for (int64_t i = 0; i < stream_len; ++i) builder.Add(sampler.Draw(rng));
  return builder;
}

TEST(StreamHistogramTest, LearnsHistogramFromOnePass) {
  Rng gen(1001);
  const HistogramSpec spec = MakeRandomKHistogram(128, 4, gen, 25.0);
  StreamHistogramOptions opt;
  opt.k = 4;
  opt.eps = 0.2;
  opt.seed = 5;
  // Stream 30x longer than the largest reservoir: sampling analysis holds.
  const GreedyParams params = ComputeGreedyParams(128, 4, 0.2, 1.0);
  const int64_t stream_len = 30 * std::max(params.l, params.m);
  const StreamHistogramBuilder builder = BuildFrom(spec.dist, stream_len, opt, 1002);

  const LearnResult res = builder.Finalize();
  EXPECT_LT(res.tiling.L2SquaredErrorTo(spec.dist), 0.01);
}

TEST(StreamHistogramTest, BeatsSketchEquiDepthOnPiecewiseData) {
  Rng gen(1003);
  const HistogramSpec spec = MakeRandomKHistogram(128, 6, gen, 40.0);
  StreamHistogramOptions opt;
  opt.k = 6;
  opt.eps = 0.2;
  const StreamHistogramBuilder builder = BuildFrom(spec.dist, 400000, opt, 1004);
  const double greedy_err = builder.Finalize().tiling.L2SquaredErrorTo(spec.dist);
  const double depth_err = builder.FinalizeEquiDepth().L2SquaredErrorTo(spec.dist);
  EXPECT_LT(greedy_err, depth_err);
}

TEST(StreamHistogramTest, RangeCountsApproximateStream) {
  StreamHistogramOptions opt;
  opt.k = 2;
  opt.eps = 0.3;
  opt.cm_eps = 0.005;
  const Distribution d = MakeZipf(256, 1.2);
  const StreamHistogramBuilder builder = BuildFrom(d, 100000, opt, 1005);
  EXPECT_EQ(builder.stream_size(), 100000);
  // Head weight ~ d.Weight([0,7]).
  const double est = static_cast<double>(builder.RangeCount(Interval(0, 7))) / 100000.0;
  EXPECT_NEAR(est, d.Weight(Interval(0, 7)), 0.12);
}

TEST(StreamHistogramTest, ShortStreamStillWorks) {
  // Stream shorter than the reservoirs: every item retained, learner runs
  // on the exact stream contents.
  StreamHistogramOptions opt;
  opt.k = 2;
  opt.eps = 0.3;
  const Distribution d = MakeStaircase(64, 2).dist;
  const StreamHistogramBuilder builder = BuildFrom(d, 3000, opt, 1006);
  const LearnResult res = builder.Finalize();
  EXPECT_LT(res.tiling.L2SquaredErrorTo(d), 0.05);
}

TEST(StreamHistogramDeathTest, EmptyStreamAborts) {
  StreamHistogramOptions opt;
  StreamHistogramBuilder builder(32, opt);
  EXPECT_DEATH(builder.Finalize(), "empty stream");
}

TEST(StreamHistogramTest, ParamsExposed) {
  StreamHistogramOptions opt;
  opt.k = 3;
  opt.eps = 0.25;
  opt.sample_scale = 0.5;
  StreamHistogramBuilder builder(64, opt);
  const GreedyParams expect = ComputeGreedyParams(64, 3, 0.25, 0.5);
  EXPECT_EQ(builder.params().l, expect.l);
  EXPECT_EQ(builder.params().m, expect.m);
  EXPECT_EQ(builder.params().r, expect.r);
}

}  // namespace
}  // namespace histk
