#include "core/lower_bound.h"

#include <gtest/gtest.h>

#include "histogram/ops.h"

namespace histk {
namespace {

TEST(LowerBoundTest, YesInstanceIsExactKHistogram) {
  Rng rng(501);
  for (int64_t k : {2, 4, 7, 8}) {
    const LowerBoundPair pair = MakeLowerBoundPair(256, k, rng);
    EXPECT_TRUE(IsTilingKHistogram(pair.yes, k)) << "k=" << k;
  }
}

TEST(LowerBoundTest, BothArePmfs) {
  Rng rng(502);
  const LowerBoundPair pair = MakeLowerBoundPair(128, 4, rng);
  for (const Distribution* d : {&pair.yes, &pair.no}) {
    double total = 0.0;
    for (int64_t i = 0; i < d->n(); ++i) {
      EXPECT_GE(d->p(i), 0.0);
      total += d->p(i);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(LowerBoundTest, IntervalWeightsMatchBetweenYesAndNo) {
  // The NO instance only re-arranges mass INSIDE one heavy interval; every
  // k-partition interval has identical weight under both. This is what
  // makes the pair hard: weight-level statistics cannot distinguish them.
  Rng rng(503);
  const LowerBoundPair pair = MakeLowerBoundPair(240, 6, rng);
  for (int64_t j = 0; j < 6; ++j) {
    const Interval I(240 * j / 6, 240 * (j + 1) / 6 - 1);
    EXPECT_NEAR(pair.yes.Weight(I), pair.no.Weight(I), 1e-12) << I.ToString();
  }
}

TEST(LowerBoundTest, NoInstanceHalvesSupportInPerturbedInterval) {
  Rng rng(504);
  const LowerBoundPair pair = MakeLowerBoundPair(256, 4, rng);
  const Interval I = pair.perturbed;
  int64_t zeros = 0, doubled = 0;
  for (int64_t i = I.lo; i <= I.hi; ++i) {
    if (pair.no.p(i) == 0.0) {
      ++zeros;
    } else {
      EXPECT_NEAR(pair.no.p(i), 2.0 * pair.yes.p(i), 1e-12);
      ++doubled;
    }
  }
  EXPECT_EQ(zeros, I.length() / 2);
  EXPECT_EQ(doubled, I.length() - I.length() / 2);
}

TEST(LowerBoundTest, L1DistanceBetweenYesAndNoIsOneOverHeavyCount) {
  Rng rng(505);
  const LowerBoundPair pair = MakeLowerBoundPair(256, 8, rng);
  // Zeroed half loses w/2, survivors gain w/2 => total L1 = w = 1/num_heavy.
  EXPECT_NEAR(pair.yes.L1DistanceTo(pair.no), 1.0 / static_cast<double>(pair.num_heavy),
              1e-9);
}

TEST(LowerBoundTest, NoInstanceIsFarFromKHistograms) {
  // The scattered zero/double pattern needs many pieces to represent.
  Rng rng(506);
  const LowerBoundPair pair = MakeLowerBoundPair(256, 4, rng);
  EXPECT_GT(MinimalPieceCount(pair.no), 4);
}

TEST(LowerBoundTest, HeavyIntervalsAlternate) {
  Rng rng(507);
  const LowerBoundPair pair = MakeLowerBoundPair(240, 6, rng);
  // Intervals 0, 2, 4 are heavy; 1, 3, 5 empty.
  for (int64_t j = 0; j < 6; ++j) {
    const Interval I(240 * j / 6, 240 * (j + 1) / 6 - 1);
    if (j % 2 == 0) {
      EXPECT_NEAR(pair.yes.Weight(I), 1.0 / 3.0, 1e-12);
    } else {
      EXPECT_NEAR(pair.yes.Weight(I), 0.0, 1e-12);
    }
  }
  EXPECT_EQ(pair.num_heavy, 3);
}

TEST(LowerBoundTest, OddKAndUnevenN) {
  Rng rng(508);
  const LowerBoundPair pair = MakeLowerBoundPair(250, 7, rng);  // 250 % 7 != 0
  EXPECT_EQ(pair.num_heavy, 4);
  double total = 0.0;
  for (int64_t i = 0; i < 250; ++i) total += pair.no.p(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_TRUE(IsTilingKHistogram(pair.yes, 7));
}

TEST(LowerBoundDeathTest, RejectsTooSmallDomain) {
  Rng rng(509);
  EXPECT_DEATH(MakeLowerBoundPair(6, 4, rng), "n >= 2");
}

}  // namespace
}  // namespace histk
