#include "stream/reservoir.h"

#include <vector>

#include <gtest/gtest.h>

namespace histk {
namespace {

TEST(ReservoirTest, KeepsEverythingBelowCapacity) {
  Reservoir r(10, 801);
  for (int64_t i = 0; i < 7; ++i) r.Add(i * 11);
  EXPECT_EQ(r.stream_size(), 7);
  ASSERT_EQ(r.sample().size(), 7u);
  for (int64_t i = 0; i < 7; ++i) EXPECT_EQ(r.sample()[static_cast<size_t>(i)], i * 11);
}

TEST(ReservoirTest, CapsAtCapacity) {
  Reservoir r(5, 802);
  for (int64_t i = 0; i < 1000; ++i) r.Add(i);
  EXPECT_EQ(r.stream_size(), 1000);
  EXPECT_EQ(r.sample().size(), 5u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each of 50 stream items should land in a 10-slot reservoir with
  // probability 1/5; average over many independent reservoirs.
  const int trials = 4000;
  std::vector<int> hits(50, 0);
  for (int t = 0; t < trials; ++t) {
    Reservoir r(10, 900 + static_cast<uint64_t>(t));
    for (int64_t i = 0; i < 50; ++i) r.Add(i);
    for (int64_t v : r.sample()) ++hits[static_cast<size_t>(v)];
  }
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[static_cast<size_t>(i)]) / trials, 0.2, 0.03)
        << "item " << i;
  }
}

TEST(ReservoirTest, DeterministicGivenSeed) {
  Reservoir a(8, 77), b(8, 77);
  for (int64_t i = 0; i < 500; ++i) {
    a.Add(i % 13);
    b.Add(i % 13);
  }
  EXPECT_EQ(a.sample(), b.sample());
}

TEST(ReservoirBankTest, IndependentReservoirs) {
  ReservoirBank bank({6, 6, 6}, 803);
  for (int64_t i = 0; i < 2000; ++i) bank.Add(i);
  EXPECT_EQ(bank.size(), 3);
  // Same capacity, same stream — but different retained samples.
  EXPECT_NE(bank.reservoir(0).sample(), bank.reservoir(1).sample());
  EXPECT_NE(bank.reservoir(1).sample(), bank.reservoir(2).sample());
}

TEST(ReservoirBankTest, MixedCapacities) {
  ReservoirBank bank({3, 100}, 804);
  for (int64_t i = 0; i < 50; ++i) bank.Add(i);
  EXPECT_EQ(bank.reservoir(0).sample().size(), 3u);
  EXPECT_EQ(bank.reservoir(1).sample().size(), 50u);  // under capacity
}

TEST(ReservoirTest, CapacityOneHoldsExactlyOneStreamElement) {
  // Degenerate reservoir: one slot, long stream. The invariant in Add pins
  // size == min(seen, 1) on every step; the retained element must be real.
  Reservoir r(1, 805);
  for (int64_t i = 0; i < 300; ++i) r.Add(i * 3);
  EXPECT_EQ(r.stream_size(), 300);
  ASSERT_EQ(r.sample().size(), 1u);
  EXPECT_EQ(r.sample()[0] % 3, 0);
  EXPECT_LT(r.sample()[0], 900);
}

TEST(ReservoirTest, EmptyReservoirReportsEmptySample) {
  const Reservoir r(4, 806);
  EXPECT_EQ(r.stream_size(), 0);
  EXPECT_TRUE(r.sample().empty());
}

TEST(ReservoirBankTest, SingleReservoirBankMatchesStandalone) {
  ReservoirBank bank({5}, 807);
  for (int64_t i = 0; i < 100; ++i) bank.Add(i);
  EXPECT_EQ(bank.size(), 1);
  EXPECT_EQ(bank.reservoir(0).stream_size(), 100);
  EXPECT_EQ(bank.reservoir(0).sample().size(), 5u);
}

TEST(ReservoirDeathTest, RejectsZeroCapacity) {
  EXPECT_DEATH(Reservoir(0, 1), "capacity");
}

TEST(ReservoirDeathTest, BankRejectsEmptyCapacityList) {
  EXPECT_DEATH(ReservoirBank({}, 1), "empty");
}

TEST(ReservoirDeathTest, BankRejectsOutOfRangeIndex) {
  const ReservoirBank bank({3}, 808);
  EXPECT_DEATH(bank.reservoir(1), "");
}

}  // namespace
}  // namespace histk
