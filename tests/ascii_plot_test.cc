#include "util/ascii_plot.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace histk {
namespace {

TEST(AsciiPlotTest, OneRowPerBucket) {
  const std::string plot = AsciiPlot(std::vector<double>(64, 1.0), 8, 20);
  EXPECT_EQ(std::count(plot.begin(), plot.end(), '\n'), 8);
}

TEST(AsciiPlotTest, PeakGetsFullWidth) {
  std::vector<double> v(16, 0.0);
  for (int i = 0; i < 4; ++i) v[static_cast<size_t>(i)] = 2.0;  // first bucket peak
  const std::string plot = AsciiPlot(v, 4, 10);
  const size_t first_line_end = plot.find('\n');
  const std::string first = plot.substr(0, first_line_end);
  EXPECT_EQ(std::count(first.begin(), first.end(), '#'), 10);
  // Zero buckets get no bar.
  const std::string rest = plot.substr(first_line_end + 1);
  EXPECT_EQ(std::count(rest.begin(), rest.end(), '#'), 0);
}

TEST(AsciiPlotTest, BucketsClampToDomain) {
  // More buckets than elements: one bucket per element.
  const std::string plot = AsciiPlot({1.0, 2.0}, 10, 5);
  EXPECT_EQ(std::count(plot.begin(), plot.end(), '\n'), 2);
}

TEST(AsciiPlotTest, AllZerosRendersWithoutBars) {
  const std::string plot = AsciiPlot(std::vector<double>(8, 0.0), 4, 10);
  EXPECT_EQ(std::count(plot.begin(), plot.end(), '#'), 0);
}

}  // namespace
}  // namespace histk
