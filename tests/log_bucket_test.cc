// Log-bucket codec invariants (stream/log_bucket.h): the telemetry
// histogram's accuracy contract rests entirely on this u64 -> key mapping,
// so the tests pin it exhaustively:
//
//   * below 2^b the codec is exact (one value per key);
//   * every value round-trips into a bucket that contains it, and the
//     bucket representative is within the advertised relative error;
//   * at every supported mantissa width the buckets tile [0, 2^64)
//     contiguously and monotonically — no gaps, no overlaps, the last
//     bucket ends exactly at u64 max.
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "stream/log_bucket.h"
#include "util/rng.h"

namespace histk {
namespace {

constexpr uint64_t kU64Max = std::numeric_limits<uint64_t>::max();

// The widths exercised across the suite: the extremes plus the default and
// one mid-range setting.
const std::vector<int> kWidths = {kLogBucketMinMantissaBits, 4,
                                  kLogBucketDefaultMantissaBits,
                                  kLogBucketMaxMantissaBits};

TEST(LogBucketTest, DenormalRegionIsExact) {
  for (int b : kWidths) {
    const uint64_t denormal_end = uint64_t{1} << b;
    for (uint64_t v = 0; v < denormal_end; ++v) {
      const uint32_t key = LogBucketKey(v, b);
      EXPECT_EQ(key, static_cast<uint32_t>(v)) << "b=" << b;
      EXPECT_EQ(LogBucketLow(key, b), v) << "b=" << b;
      EXPECT_EQ(LogBucketHigh(key, b), v) << "b=" << b;
      EXPECT_EQ(LogBucketRepresentative(key, b), v) << "b=" << b;
    }
  }
}

TEST(LogBucketTest, KeyCountMatchesFormula) {
  for (int b = kLogBucketMinMantissaBits; b <= kLogBucketMaxMantissaBits; ++b) {
    EXPECT_EQ(LogBucketKeyCount(b), static_cast<uint32_t>(65 - b) << b);
    // The largest value must land on the last key: the key space is tight.
    EXPECT_EQ(LogBucketKey(kU64Max, b), LogBucketKeyCount(b) - 1);
  }
}

// Every probed value lands in a bucket that contains it, and the bucket's
// representative is within the advertised max relative error.
TEST(LogBucketTest, RoundTripWithinRelativeError) {
  Rng rng(0xB0C) /* deterministic probe values */;
  for (int b : kWidths) {
    const double max_err = LogBucketMaxRelativeError(b);
    EXPECT_DOUBLE_EQ(max_err, 1.0 / static_cast<double>(uint64_t{2} << b));

    std::vector<uint64_t> probes = {0, 1, 2, kU64Max, kU64Max - 1,
                                    (uint64_t{1} << b) - 1, uint64_t{1} << b,
                                    (uint64_t{1} << b) + 1};
    for (int e = 1; e < 64; ++e) {
      const uint64_t p = uint64_t{1} << e;
      probes.push_back(p - 1);
      probes.push_back(p);
      probes.push_back(p + 1);
    }
    for (int i = 0; i < 4096; ++i) probes.push_back(rng.NextU64());

    for (uint64_t v : probes) {
      const uint32_t key = LogBucketKey(v, b);
      ASSERT_LT(key, LogBucketKeyCount(b)) << "b=" << b << " v=" << v;
      const uint64_t lo = LogBucketLow(key, b);
      const uint64_t hi = LogBucketHigh(key, b);
      ASSERT_LE(lo, v) << "b=" << b << " v=" << v;
      ASSERT_GE(hi, v) << "b=" << b << " v=" << v;
      const uint64_t rep = LogBucketRepresentative(key, b);
      ASSERT_LE(lo, rep);
      ASSERT_GE(hi, rep);
      // |rep - v| <= max_err * v for v > 0 (the denormal region is exact,
      // so this only bites in the geometric region where v >= lo >= 2^b).
      const double err = v >= rep ? static_cast<double>(v - rep)
                                  : static_cast<double>(rep - v);
      if (v > 0) {
        EXPECT_LE(err, max_err * static_cast<double>(v) + 1e-9)
            << "b=" << b << " v=" << v << " rep=" << rep;
      }
    }
  }
}

// The buckets tile [0, 2^64) with no gaps and no overlaps: each bucket
// starts exactly one past the previous bucket's end, bucket ends are
// strictly increasing, the last bucket ends at u64 max, and both endpoints
// of every bucket map back to its key.
TEST(LogBucketTest, BucketsTileTheFullRangeContiguously) {
  for (int b : kWidths) {
    const uint32_t keys = LogBucketKeyCount(b);
    uint64_t expected_low = 0;
    for (uint32_t key = 0; key < keys; ++key) {
      const uint64_t lo = LogBucketLow(key, b);
      const uint64_t hi = LogBucketHigh(key, b);
      ASSERT_EQ(lo, expected_low) << "b=" << b << " key=" << key;
      ASSERT_GE(hi, lo) << "b=" << b << " key=" << key;
      ASSERT_EQ(LogBucketKey(lo, b), key) << "b=" << b;
      ASSERT_EQ(LogBucketKey(hi, b), key) << "b=" << b;
      if (key + 1 < keys) {
        expected_low = hi + 1;
        ASSERT_GT(hi + 1, hi) << "b=" << b << " key=" << key;  // no wrap early
      } else {
        ASSERT_EQ(hi, kU64Max) << "b=" << b;
      }
    }
  }
}

// Key order agrees with value order: the codec is monotone, which is what
// makes snapshot CDFs and quantiles well-defined.
TEST(LogBucketTest, KeysAreMonotoneInValue) {
  Rng rng(0x10C);
  for (int b : kWidths) {
    for (int i = 0; i < 4096; ++i) {
      const uint64_t x = rng.NextU64();
      const uint64_t y = rng.NextU64();
      const uint64_t small = x < y ? x : y;
      const uint64_t big = x < y ? y : x;
      EXPECT_LE(LogBucketKey(small, b), LogBucketKey(big, b)) << "b=" << b;
    }
  }
}

TEST(LogBucketTest, DefaultWidthMeetsTheAdvertisedBudget) {
  // README/ISSUE contract: the default width costs <= 7424 counters and
  // keeps relative value error under 1%.
  EXPECT_EQ(LogBucketKeyCount(kLogBucketDefaultMantissaBits), 7424u);
  EXPECT_LT(LogBucketMaxRelativeError(kLogBucketDefaultMantissaBits), 0.01);
}

}  // namespace
}  // namespace histk
