#include "core/flatness.h"

#include <gtest/gtest.h>

#include "dist/generators.h"
#include "dist/sampler.h"

namespace histk {
namespace {

SampleSetGroup DrawGroup(const Distribution& d, int64_t r, int64_t m, uint64_t seed) {
  const AliasSampler sampler(d);
  Rng rng(seed);
  return SampleSetGroup::Draw(sampler, r, m, rng);
}

TEST(FlatnessL2Test, AcceptsUniformInterval) {
  const SampleSetGroup g = DrawGroup(Distribution::Uniform(128), 9, 50000, 301);
  const FlatnessDecision d = TestFlatnessL2(g, Interval::Full(128), 0.25);
  EXPECT_TRUE(d.accept);
  EXPECT_FALSE(d.light);
  EXPECT_NEAR(d.z, 1.0 / 128.0, 0.001);
}

TEST(FlatnessL2Test, AcceptsFlatSubIntervalOfHistogram) {
  const HistogramSpec spec = MakeStaircase(120, 3);
  const SampleSetGroup g = DrawGroup(spec.dist, 9, 60000, 302);
  // Each true piece is flat.
  EXPECT_TRUE(TestFlatnessL2(g, Interval(0, 39), 0.25).accept);
  EXPECT_TRUE(TestFlatnessL2(g, Interval(40, 79), 0.25).accept);
  EXPECT_TRUE(TestFlatnessL2(g, Interval(80, 119), 0.25).accept);
}

TEST(FlatnessL2Test, RejectsSpikyInterval) {
  // A point mass inside the interval: ||p_I||_2^2 = 1 >> 1/|I|.
  std::vector<double> w(64, 0.0);
  w[10] = 1.0;
  const SampleSetGroup g = DrawGroup(Distribution::FromWeights(w), 9, 20000, 303);
  const FlatnessDecision d = TestFlatnessL2(g, Interval(0, 31), 0.25);
  EXPECT_FALSE(d.accept);
  EXPECT_NEAR(d.z, 1.0, 0.01);
}

TEST(FlatnessL2Test, LightIntervalShortcut) {
  // Interval with ~zero weight: accepted as light regardless of shape.
  std::vector<double> w(64, 0.0);
  for (int i = 0; i < 32; ++i) w[static_cast<size_t>(i)] = 1.0;
  const SampleSetGroup g = DrawGroup(Distribution::FromWeights(w), 5, 10000, 304);
  const FlatnessDecision d = TestFlatnessL2(g, Interval(40, 63), 0.3);
  EXPECT_TRUE(d.accept);
  EXPECT_TRUE(d.light);
}

TEST(FlatnessL2Test, StraddlingPieceBoundaryRejects) {
  // Two pieces with densities 1:9 — an interval covering both is far from
  // flat: ||p_I||^2 substantially exceeds 1/|I|.
  std::vector<double> w(64, 1.0);
  for (int i = 32; i < 64; ++i) w[static_cast<size_t>(i)] = 9.0;
  const SampleSetGroup g = DrawGroup(Distribution::FromWeights(w), 9, 60000, 305);
  const FlatnessDecision d = TestFlatnessL2(g, Interval::Full(64), 0.2);
  EXPECT_FALSE(d.accept);
}

TEST(FlatnessL1Test, AcceptsUniformInterval) {
  const SampleSetGroup g = DrawGroup(Distribution::Uniform(128), 9, 200000, 306);
  const FlatnessDecision d = TestFlatnessL1(g, Interval::Full(128), 0.4, 2);
  EXPECT_TRUE(d.accept);
}

TEST(FlatnessL1Test, RejectsZigzagInterval) {
  const Distribution zz = MakeZigzagL1Far(128, 2, 0.4);
  const SampleSetGroup g = DrawGroup(zz, 9, 200000, 307);
  const FlatnessDecision d = TestFlatnessL1(g, Interval::Full(128), 0.4, 2);
  EXPECT_FALSE(d.accept);
  // z should be near (1 + a^2)/n with a the zigzag amplitude.
  const double a = ZigzagAmplitude(128, 2, 0.4, 1.1);
  EXPECT_NEAR(d.z, (1.0 + a * a) / 128.0, 0.1 / 128.0);
}

TEST(FlatnessL1Test, LightIntervalShortcut) {
  std::vector<double> w(256, 0.0);
  for (int i = 0; i < 64; ++i) w[static_cast<size_t>(i)] = 1.0;
  const SampleSetGroup g = DrawGroup(Distribution::FromWeights(w), 5, 5000, 308);
  // [128, 135]: zero weight, so each replicate sees 0 < threshold samples.
  const FlatnessDecision d = TestFlatnessL1(g, Interval(128, 135), 0.4, 2);
  EXPECT_TRUE(d.accept);
  EXPECT_TRUE(d.light);
}

TEST(FlatnessL1Test, SingletonAlwaysFlat) {
  const SampleSetGroup g = DrawGroup(Distribution::PointMass(32, 5), 5, 1000, 309);
  // z of a singleton is exactly 1 = 1/|I| <= (1+eps^2/4)/1.
  EXPECT_TRUE(TestFlatnessL1(g, Interval(5, 5), 0.3, 2).accept);
  EXPECT_TRUE(TestFlatnessL2(g, Interval(5, 5), 0.3).accept);
}

TEST(FlatnessTest, ThresholdFieldsExposed) {
  const SampleSetGroup g = DrawGroup(Distribution::Uniform(64), 5, 20000, 310);
  const FlatnessDecision d2 = TestFlatnessL2(g, Interval::Full(64), 0.3);
  EXPECT_GT(d2.threshold, 1.0 / 64.0);
  const FlatnessDecision d1 = TestFlatnessL1(g, Interval::Full(64), 0.3, 2);
  EXPECT_NEAR(d1.threshold, (1.0 + 0.09 / 4.0) / 64.0, 1e-12);
}

}  // namespace
}  // namespace histk
