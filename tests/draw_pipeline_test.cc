// The PR 4 draw-pipeline contract:
//
//   1. Replay parity — the batched kernels (DrawManyInto, and DrawMany /
//      DrawManySharded on top of it) replay the scalar Draw loop's byte
//      sequence for every sampler, dense and bucketed.
//   2. Fused parity — DrawCounts/DrawCountsSharded through SampleCounter
//      produce a SampleSet identical to materialize-then-count
//      (FromDraws ∘ DrawMany/DrawManySharded), at every num_threads in
//      {1, 2, 8}, and leave the rng in the same state.
//   3. The packed kernel (opt-in, reordered stream) is deterministic,
//      thread-count invariant, statistically faithful, and never emits
//      zero-mass elements — but is NOT byte-compatible with replay.
//   4. The FromDraws move-in overload and the FromRuns pre-counted
//      constructor agree with the historical constructors.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dist/dataset.h"
#include "dist/distribution.h"
#include "dist/generators.h"
#include "dist/sampler.h"
#include "sample/counter.h"
#include "sample/sample_set.h"
#include "util/interval.h"
#include "util/rng.h"

namespace histk {
namespace {

/// Samplers under test share this domain zoo: a dense skewed pmf, a dense
/// pmf with zero-mass holes, a bucketed pmf on a dense-sized domain, and a
/// bucketed pmf on a domain far beyond SampleSet::kDenseDomainLimit.
Distribution DenseSkewed() { return MakeZipf(64, 1.2); }

Distribution DenseWithHoles() {
  return Distribution::FromWeights({0, 3, 0, 0, 1, 2, 0, 5, 0, 0, 0, 1, 0});
}

Distribution BucketSmall() {
  return Distribution::FromBucketWeights(1000, {9, 99, 100, 499, 999},
                                         {5.0, 1.0, 0.0, 3.0, 2.0});
}

Distribution BucketHuge() {
  const int64_t n = int64_t{1} << 30;
  return Distribution::FromBucketWeights(
      n, {999, n / 4, n / 2, n - 2, n - 1}, {4.0, 2.0, 0.0, 3.0, 1.0});
}

/// Rng state fingerprint: the next few outputs (consumed from a copy).
std::vector<uint64_t> RngFingerprint(Rng rng) {
  std::vector<uint64_t> out;
  for (int i = 0; i < 4; ++i) out.push_back(rng.NextU64());
  return out;
}

void ExpectSameSampleSet(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  ASSERT_EQ(a.distinct_values(), b.distinct_values());
  const Interval full = Interval::Full(a.n());
  EXPECT_EQ(a.Count(full), b.Count(full));
  EXPECT_EQ(a.Collisions(full), b.Collisions(full));
  Rng probe(0xABCD);
  for (int q = 0; q < 64; ++q) {
    const int64_t x = probe.UniformInRange(0, a.n() - 1);
    const int64_t y = probe.UniformInRange(0, a.n() - 1);
    const Interval I(std::min(x, y), std::max(x, y));
    EXPECT_EQ(a.Count(I), b.Count(I));
    EXPECT_EQ(a.Collisions(I), b.Collisions(I));
  }
}

// ---------------------------------------------------------------- replay

TEST(DrawPipelineTest, DrawManyIntoReplaysScalarDrawLoop) {
  const Distribution dists[] = {DenseSkewed(), DenseWithHoles(), BucketSmall(),
                                BucketHuge()};
  for (const Distribution& d : dists) {
    const AliasSampler alias(d);
    const CdfSampler cdf(d);
    for (const Sampler* s : {static_cast<const Sampler*>(&alias),
                             static_cast<const Sampler*>(&cdf)}) {
      Rng scalar_rng(7), into_rng(7), many_rng(7);
      std::vector<int64_t> scalar(5000);
      for (auto& v : scalar) v = s->Draw(scalar_rng);
      std::vector<int64_t> into(5000);
      s->DrawManyInto(into.data(), 5000, into_rng);
      const std::vector<int64_t> many = s->DrawMany(5000, many_rng);
      EXPECT_EQ(scalar, into);
      EXPECT_EQ(scalar, many);
      EXPECT_EQ(RngFingerprint(scalar_rng), RngFingerprint(into_rng));
      EXPECT_EQ(RngFingerprint(scalar_rng), RngFingerprint(many_rng));
    }
  }
}

TEST(DrawPipelineTest, DatasetSamplerBatchedReplaysScalar) {
  const DatasetSampler s(40, {1, 1, 2, 3, 5, 8, 13, 21, 34});
  Rng scalar_rng(11), many_rng(11);
  std::vector<int64_t> scalar(2000);
  for (auto& v : scalar) v = s.Draw(scalar_rng);
  EXPECT_EQ(scalar, s.DrawMany(2000, many_rng));
  EXPECT_EQ(RngFingerprint(scalar_rng), RngFingerprint(many_rng));
}

TEST(DrawPipelineTest, ShardedIntoSlicesMatchesSeedReplay) {
  // DrawManySharded now writes chunks straight into the output slice; it
  // must still be byte-identical across worker counts and deterministic.
  const AliasSampler s(BucketHuge());
  Rng r1(3), r2(3), r8(3);
  const auto out1 = s.DrawManySharded(200000, r1, 1);
  const auto out2 = s.DrawManySharded(200000, r2, 2);
  const auto out8 = s.DrawManySharded(200000, r8, 8);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(out1, out8);
  EXPECT_EQ(RngFingerprint(r1), RngFingerprint(r8));
}

// ----------------------------------------------------------------- fused

TEST(DrawPipelineTest, FusedSequentialMatchesMaterializeThenCount) {
  const Distribution dists[] = {DenseSkewed(), BucketSmall(), BucketHuge()};
  for (const Distribution& d : dists) {
    const AliasSampler s(d);
    for (const int64_t m : {int64_t{0}, int64_t{1}, int64_t{5000},
                            int64_t{200000}}) {
      Rng fused_rng(42), mat_rng(42);
      SampleCounter counter(s.n(), m);
      s.DrawCounts(m, fused_rng, counter);
      EXPECT_EQ(counter.total(), m);
      const SampleSet fused = counter.Build();
      const SampleSet materialized = SampleSet::FromDraws(s.n(), s.DrawMany(m, mat_rng));
      ExpectSameSampleSet(fused, materialized);
      // Interchangeable under a fixed seed: same rng state afterwards.
      EXPECT_EQ(RngFingerprint(fused_rng), RngFingerprint(mat_rng));
    }
  }
}

TEST(DrawPipelineTest, FusedShardedMatchesMaterializedAtEveryThreadCount) {
  const Distribution dists[] = {DenseSkewed(), BucketHuge()};
  for (const Distribution& d : dists) {
    const AliasSampler s(d);
    const int64_t m = 200000;
    Rng mat_rng(9);
    const SampleSet materialized =
        SampleSet::FromDraws(s.n(), s.DrawManySharded(m, mat_rng, 1));
    for (const int threads : {1, 2, 8}) {
      Rng fused_rng(9);
      const SampleSet fused = SampleSet::DrawSharded(s, m, fused_rng, threads);
      ExpectSameSampleSet(fused, materialized);
      EXPECT_EQ(RngFingerprint(fused_rng), RngFingerprint(mat_rng));
    }
  }
}

TEST(DrawPipelineTest, SampleSetDrawStillReplaysHistoricalPath) {
  // SampleSet::Draw switched to the fused pipeline; seeded callers must see
  // the exact set (and rng state) the materialized path produced.
  const AliasSampler s(DenseSkewed());
  Rng fused_rng(123), legacy_rng(123);
  const SampleSet via_draw = SampleSet::Draw(s, 50000, fused_rng);
  const SampleSet legacy = SampleSet::FromDraws(s.n(), s.DrawMany(50000, legacy_rng));
  ExpectSameSampleSet(via_draw, legacy);
  EXPECT_EQ(RngFingerprint(fused_rng), RngFingerprint(legacy_rng));
}

TEST(DrawPipelineTest, GroupDrawShardedThreadInvariant) {
  const AliasSampler s(BucketSmall());
  Rng r1(77), r8(77);
  const SampleSetGroup g1 = SampleSetGroup::DrawSharded(s, 3, 40000, r1, 1);
  const SampleSetGroup g8 = SampleSetGroup::DrawSharded(s, 3, 40000, r8, 8);
  ASSERT_EQ(g1.r(), g8.r());
  for (int64_t i = 0; i < g1.r(); ++i) ExpectSameSampleSet(g1.set(i), g8.set(i));
  EXPECT_EQ(RngFingerprint(r1), RngFingerprint(r8));
}

// ---------------------------------------------------------------- packed

TEST(DrawPipelineTest, PackedKernelDeterministicAndThreadInvariant) {
  for (const Distribution& d : {DenseSkewed(), BucketHuge()}) {
    const AliasSampler s(d, AliasKernel::kPacked);
    Rng a(5), b(5);
    EXPECT_EQ(s.DrawMany(20000, a), s.DrawMany(20000, b));
    Rng r1(6), r8(6);
    EXPECT_EQ(s.DrawManySharded(100000, r1, 1), s.DrawManySharded(100000, r8, 8));
  }
}

TEST(DrawPipelineTest, PackedKernelScalarDrawMatchesBatch) {
  const AliasSampler s(BucketSmall(), AliasKernel::kPacked);
  Rng scalar_rng(15), batch_rng(15);
  std::vector<int64_t> scalar(3000);
  for (auto& v : scalar) v = s.Draw(scalar_rng);
  EXPECT_EQ(scalar, s.DrawMany(3000, batch_rng));
}

TEST(DrawPipelineTest, PackedKernelMatchesPmfChiSquare) {
  const Distribution d = Distribution::FromWeights({1, 2, 3, 4, 5, 5, 4, 3, 2, 1});
  const AliasSampler s(d, AliasKernel::kPacked);
  Rng rng(31);
  const auto draws = s.DrawMany(200000, rng);
  std::vector<int64_t> counts(10, 0);
  for (int64_t v : draws) ++counts[static_cast<size_t>(v)];
  double chi2 = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    const double expect = d.p(i) * 200000.0;
    const double delta = static_cast<double>(counts[static_cast<size_t>(i)]) - expect;
    chi2 += delta * delta / expect;
  }
  // 9 dof; 99.9% quantile ~ 27.9.
  EXPECT_LT(chi2, 30.0);
}

TEST(DrawPipelineTest, PackedKernelNeverDrawsZeroMass) {
  const AliasSampler dense(DenseWithHoles(), AliasKernel::kPacked);
  Rng rng(33);
  for (int64_t v : dense.DrawMany(20000, rng)) {
    EXPECT_TRUE(v == 1 || v == 4 || v == 5 || v == 7 || v == 11) << v;
  }
  // BucketSmall's third run ([100,100], weight 0) must never appear; note
  // it is also a singleton run, exercising the unconditional offset draw.
  const AliasSampler bucket(BucketSmall(), AliasKernel::kPacked);
  Rng rng2(34);
  for (int64_t v : bucket.DrawMany(50000, rng2)) {
    EXPECT_NE(v, 100);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(DrawPipelineTest, PackedBucketWeightsMatchRunMasses) {
  const Distribution d = BucketHuge();
  const AliasSampler s(d, AliasKernel::kPacked);
  Rng rng(35);
  const int64_t m = 400000;
  const auto draws = s.DrawMany(m, rng);
  // Per-run empirical mass within 1% absolute of the true run weights.
  const std::vector<int64_t>& ends = d.bucket_right_ends();
  std::vector<int64_t> counts(ends.size(), 0);
  for (int64_t v : draws) {
    size_t j = 0;
    while (ends[j] < v) ++j;
    ++counts[j];
  }
  int64_t lo = 0;
  for (size_t j = 0; j < ends.size(); ++j) {
    const double mass = d.Weight(Interval(lo, ends[j]));
    EXPECT_NEAR(static_cast<double>(counts[j]) / static_cast<double>(m), mass, 0.01);
    lo = ends[j] + 1;
  }
}

// ----------------------------------------------------------------- simd

TEST(DrawPipelineTest, SimdFusedSequentialMatchesMaterializeThenCount) {
  // Same fused-path contract the default kernel honors, on kSimd: DrawCounts
  // → SampleCounter equals materialize-then-count, with the same rng state.
  const Distribution dists[] = {DenseSkewed(), BucketSmall(), BucketHuge()};
  for (const Distribution& d : dists) {
    const AliasSampler s(d, AliasKernel::kSimd);
    for (const int64_t m : {int64_t{0}, int64_t{1}, int64_t{5000},
                            int64_t{200000}}) {
      Rng fused_rng(42), mat_rng(42);
      SampleCounter counter(s.n(), m);
      s.DrawCounts(m, fused_rng, counter);
      EXPECT_EQ(counter.total(), m);
      const SampleSet fused = counter.Build();
      const SampleSet materialized =
          SampleSet::FromDraws(s.n(), s.DrawMany(m, mat_rng));
      ExpectSameSampleSet(fused, materialized);
      EXPECT_EQ(RngFingerprint(fused_rng), RngFingerprint(mat_rng));
    }
  }
}

TEST(DrawPipelineTest, SimdFusedShardedMatchesMaterializedAtEveryThreadCount) {
  const Distribution dists[] = {DenseSkewed(), BucketHuge()};
  for (const Distribution& d : dists) {
    const AliasSampler s(d, AliasKernel::kSimd);
    const int64_t m = 200000;
    Rng mat_rng(9);
    const SampleSet materialized =
        SampleSet::FromDraws(s.n(), s.DrawManySharded(m, mat_rng, 1));
    for (const int threads : {1, 2, 8}) {
      Rng fused_rng(9);
      const SampleSet fused = SampleSet::DrawSharded(s, m, fused_rng, threads);
      ExpectSameSampleSet(fused, materialized);
      EXPECT_EQ(RngFingerprint(fused_rng), RngFingerprint(mat_rng));
    }
  }
}

// ------------------------------------------------- SampleSet constructors

TEST(DrawPipelineTest, FromDrawsMoveInMatchesCopying) {
  const AliasSampler s(BucketHuge());
  Rng rng(51);
  const std::vector<int64_t> draws = s.DrawMany(30000, rng);
  std::vector<int64_t> movable = draws;
  const SampleSet copied = SampleSet::FromDraws(s.n(), draws);
  const SampleSet moved = SampleSet::FromDraws(s.n(), std::move(movable));
  ExpectSameSampleSet(copied, moved);
}

TEST(DrawPipelineTest, FromRunsMatchesFromDraws) {
  // Dense domain: FromRuns must pick the dense backend like FromDraws.
  {
    const SampleSet from_runs = SampleSet::FromRuns(10, {1, 4, 7}, {3, 1, 2});
    const SampleSet from_draws = SampleSet::FromDraws(10, {1, 1, 1, 4, 7, 7});
    ExpectSameSampleSet(from_runs, from_draws);
  }
  // Sparse domain.
  {
    const int64_t n = int64_t{1} << 30;
    const SampleSet from_runs =
        SampleSet::FromRuns(n, {5, 1000000, n - 1}, {2, 1, 4});
    const SampleSet from_draws = SampleSet::FromDraws(
        n, {5, 5, 1000000, n - 1, n - 1, n - 1, n - 1});
    ExpectSameSampleSet(from_runs, from_draws);
  }
  // Empty runs are a valid (m = 0) set.
  const SampleSet empty = SampleSet::FromRuns(int64_t{1} << 30, {}, {});
  EXPECT_EQ(empty.m(), 0);
  EXPECT_EQ(empty.Count(Interval::Full(empty.n())), 0);
}

}  // namespace
}  // namespace histk
