// The AliasKernel::kSimd contract (src/dist/simd/):
//
//   1. Backend byte-parity — the forced-scalar reference and the dispatched
//      vector path produce identical streams (values AND rng state) for
//      every seed, distribution shape, and batch length, including partial
//      lane groups and kShardChunk block boundaries. On hosts without AVX2
//      the parity tests skip (there is only one backend to compare).
//   2. Stream structure — kSimd consumes one NextU64 per kShardChunk block,
//      so DrawMany / DrawCounts agree draw-for-draw and the sharded paths
//      are thread-count invariant; Draw() is a one-block batch of m = 1.
//   3. Statistical parity with kReplay — chi-square over dense elements and
//      bucket runs, zero-mass elements/runs never drawn (including the
//      zero-mass singleton run), per-run masses within tolerance.
//   4. RngLanes — lane streams are the documented pure function of
//      (root, lane): lane l replays Rng(SplitMix64(root ^ GOLDEN*(l+1))).
//   5. Dispatch — AcceptThreshold edge cases and the scoped override.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dist/dataset.h"
#include "dist/distribution.h"
#include "dist/generators.h"
#include "dist/sampler.h"
#include "dist/simd/draw_kernels.h"
#include "util/interval.h"
#include "util/rng.h"
#include "util/rng_lanes.h"

namespace histk {
namespace {

Distribution DenseSkewed() { return MakeZipf(64, 1.2); }

Distribution DenseWithHoles() {
  return Distribution::FromWeights({0, 3, 0, 0, 1, 2, 0, 5, 0, 0, 0, 1, 0});
}

Distribution BucketSmall() {
  // The third run ([100, 100], weight 0) is a zero-mass SINGLETON run.
  return Distribution::FromBucketWeights(1000, {9, 99, 100, 499, 999},
                                         {5.0, 1.0, 0.0, 3.0, 2.0});
}

Distribution BucketHuge() {
  const int64_t n = int64_t{1} << 30;
  return Distribution::FromBucketWeights(
      n, {999, n / 4, n / 2, n - 2, n - 1}, {4.0, 2.0, 0.0, 3.0, 1.0});
}

std::vector<uint64_t> RngFingerprint(Rng rng) {
  std::vector<uint64_t> out;
  for (int i = 0; i < 4; ++i) out.push_back(rng.NextU64());
  return out;
}

bool Avx2Active() {
  return simd::ActiveSimdBackend() == simd::SimdBackend::kAvx2;
}

// ------------------------------------------------------------ byte parity

// Batch lengths hitting: sub-group, exact group, group+tail, many groups,
// exact block, block+tail, multi-block.
const int64_t kParityLens[] = {1,     3,     4,         5,     1000,
                               65536, 65537, 65536 + 17, 200000};

TEST(SimdKernelTest, ForcedScalarMatchesVectorByteForByte) {
  if (!Avx2Active()) GTEST_SKIP() << "no AVX2 backend on this host";
  const Distribution dists[] = {DenseSkewed(), DenseWithHoles(), BucketSmall(),
                                BucketHuge()};
  for (const Distribution& d : dists) {
    // Kernel selection happens at construction: build one sampler under the
    // forced-scalar override and one with live dispatch (AVX2 here).
    const AliasSampler vec(d, AliasKernel::kSimd);
    simd::ScopedSimdBackendOverride force(simd::SimdBackend::kScalar);
    const AliasSampler ref(d, AliasKernel::kSimd);
    for (const uint64_t seed : {1u, 7u, 99u, 12345u}) {
      for (const int64_t m : kParityLens) {
        Rng ref_rng(seed), vec_rng(seed);
        ASSERT_EQ(ref.DrawMany(m, ref_rng), vec.DrawMany(m, vec_rng))
            << "m=" << m << " seed=" << seed;
        ASSERT_EQ(RngFingerprint(ref_rng), RngFingerprint(vec_rng));
      }
    }
  }
}

TEST(SimdKernelTest, DatasetForcedScalarMatchesVectorByteForByte) {
  if (!Avx2Active()) GTEST_SKIP() << "no AVX2 backend on this host";
  const std::vector<int64_t> items = {1, 1, 2, 3, 5, 8, 13, 21, 34};
  const DatasetSampler vec(40, items, AliasKernel::kSimd);
  simd::ScopedSimdBackendOverride force(simd::SimdBackend::kScalar);
  const DatasetSampler ref(40, items, AliasKernel::kSimd);
  for (const uint64_t seed : {11u, 77u}) {
    for (const int64_t m : kParityLens) {
      Rng ref_rng(seed), vec_rng(seed);
      ASSERT_EQ(ref.DrawMany(m, ref_rng), vec.DrawMany(m, vec_rng))
          << "m=" << m << " seed=" << seed;
      ASSERT_EQ(RngFingerprint(ref_rng), RngFingerprint(vec_rng));
    }
  }
}

// -------------------------------------------------------- stream structure

TEST(SimdKernelTest, FusedCountsConsumeRngLikeDrawMany) {
  for (const Distribution& d : {DenseSkewed(), BucketHuge()}) {
    const AliasSampler s(d, AliasKernel::kSimd);
    for (const int64_t m : {int64_t{1}, int64_t{5000}, int64_t{200000}}) {
      Rng many_rng(42), counts_rng(42);
      const std::vector<int64_t> draws = s.DrawMany(m, many_rng);
      std::vector<int64_t> replayed;
      struct Collect : CountSink {
        std::vector<int64_t>* out;
        void Consume(const int64_t* d, int64_t len) override {
          out->insert(out->end(), d, d + len);
        }
      } sink;
      sink.out = &replayed;
      s.DrawCounts(m, counts_rng, sink);
      EXPECT_EQ(draws, replayed) << "m=" << m;
      EXPECT_EQ(RngFingerprint(many_rng), RngFingerprint(counts_rng));
    }
  }
}

TEST(SimdKernelTest, ShardedThreadCountInvariant) {
  for (const Distribution& d : {DenseSkewed(), BucketHuge()}) {
    const AliasSampler s(d, AliasKernel::kSimd);
    Rng r1(6), r2(6), r8(6);
    const auto out1 = s.DrawManySharded(200000, r1, 1);
    EXPECT_EQ(out1, s.DrawManySharded(200000, r2, 2));
    EXPECT_EQ(out1, s.DrawManySharded(200000, r8, 8));
    EXPECT_EQ(RngFingerprint(r1), RngFingerprint(r8));
  }
}

TEST(SimdKernelTest, ScalarDrawIsSingleDrawBatch) {
  const AliasSampler s(BucketSmall(), AliasKernel::kSimd);
  Rng scalar_rng(15), batch_rng(15);
  for (int i = 0; i < 100; ++i) {
    const int64_t one = s.Draw(scalar_rng);
    EXPECT_EQ(one, s.DrawMany(1, batch_rng)[0]);
  }
  EXPECT_EQ(RngFingerprint(scalar_rng), RngFingerprint(batch_rng));
}

TEST(SimdKernelTest, DeterministicPerSeed) {
  const AliasSampler s(DenseSkewed(), AliasKernel::kSimd);
  Rng a(5), b(5), c(6);
  const auto draws_a = s.DrawMany(20000, a);
  EXPECT_EQ(draws_a, s.DrawMany(20000, b));
  EXPECT_NE(draws_a, s.DrawMany(20000, c));
}

// ------------------------------------------------------ statistical parity

TEST(SimdKernelTest, DenseMatchesPmfChiSquare) {
  const Distribution d =
      Distribution::FromWeights({1, 2, 3, 4, 5, 5, 4, 3, 2, 1});
  const AliasSampler s(d, AliasKernel::kSimd);
  Rng rng(31);
  const auto draws = s.DrawMany(200000, rng);
  std::vector<int64_t> counts(10, 0);
  for (int64_t v : draws) ++counts[static_cast<size_t>(v)];
  double chi2 = 0.0;
  for (int64_t i = 0; i < 10; ++i) {
    const double expect = d.p(i) * 200000.0;
    const double delta =
        static_cast<double>(counts[static_cast<size_t>(i)]) - expect;
    chi2 += delta * delta / expect;
  }
  // 9 dof; 99.9% quantile ~ 27.9.
  EXPECT_LT(chi2, 30.0);
}

TEST(SimdKernelTest, BucketRunCountsMatchReplayChiSquare) {
  // Two-sample chi-square over runs: kSimd vs kReplay draws of equal size
  // from the same bucketed pmf must look like two samples of one
  // distribution.
  const Distribution d = BucketHuge();
  const AliasSampler simd_s(d, AliasKernel::kSimd);
  const AliasSampler replay_s(d);  // kReplay
  const int64_t m = 400000;
  Rng simd_rng(35), replay_rng(36);
  const std::vector<int64_t>& ends = d.bucket_right_ends();
  auto run_counts = [&ends](const std::vector<int64_t>& draws) {
    std::vector<int64_t> counts(ends.size(), 0);
    for (int64_t v : draws) {
      size_t j = 0;
      while (ends[j] < v) ++j;
      ++counts[j];
    }
    return counts;
  };
  const auto simd_counts = run_counts(simd_s.DrawMany(m, simd_rng));
  const auto replay_counts = run_counts(replay_s.DrawMany(m, replay_rng));
  double chi2 = 0.0;
  int dof = 0;
  for (size_t j = 0; j < ends.size(); ++j) {
    const double total =
        static_cast<double>(simd_counts[j] + replay_counts[j]);
    if (total == 0.0) continue;  // zero-mass run: both must be 0 (checked below)
    const double delta =
        static_cast<double>(simd_counts[j] - replay_counts[j]);
    chi2 += delta * delta / total;
    ++dof;
  }
  // dof - 1 = 3 here; 99.9% quantile ~ 16.3.
  EXPECT_LT(chi2, 18.0);
  // The zero-mass run draws nothing under either kernel.
  EXPECT_EQ(simd_counts[2], 0);
  EXPECT_EQ(replay_counts[2], 0);
}

TEST(SimdKernelTest, NeverDrawsZeroMass) {
  const AliasSampler dense(DenseWithHoles(), AliasKernel::kSimd);
  Rng rng(33);
  for (int64_t v : dense.DrawMany(20000, rng)) {
    EXPECT_TRUE(v == 1 || v == 4 || v == 5 || v == 7 || v == 11) << v;
  }
  // BucketSmall's zero-mass singleton run [100, 100] must never appear.
  const AliasSampler bucket(BucketSmall(), AliasKernel::kSimd);
  Rng rng2(34);
  for (int64_t v : bucket.DrawMany(50000, rng2)) {
    EXPECT_NE(v, 100);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 1000);
  }
}

TEST(SimdKernelTest, BucketWeightsMatchRunMasses) {
  const Distribution d = BucketSmall();
  const AliasSampler s(d, AliasKernel::kSimd);
  Rng rng(37);
  const int64_t m = 400000;
  const auto draws = s.DrawMany(m, rng);
  const std::vector<int64_t>& ends = d.bucket_right_ends();
  std::vector<int64_t> counts(ends.size(), 0);
  for (int64_t v : draws) {
    size_t j = 0;
    while (ends[j] < v) ++j;
    ++counts[j];
  }
  int64_t lo = 0;
  for (size_t j = 0; j < ends.size(); ++j) {
    const double mass = d.Weight(Interval(lo, ends[j]));
    EXPECT_NEAR(static_cast<double>(counts[j]) / static_cast<double>(m), mass,
                0.01);
    lo = ends[j] + 1;
  }
}

// --------------------------------------------------------------- RngLanes

TEST(SimdKernelTest, RngLanesReplayDerivedScalarStreams) {
  // Lane l of RngLanes(root) is documented to be the stream of
  // Rng(SplitMix64(root ^ GOLDEN * (l + 1))) — the sharded chunk-stream
  // derivation. Pin it: this is what makes the kSimd stream a pure function
  // of the caller's rng.
  const uint64_t root = 0xDEADBEEFCAFEF00DULL;
  RngLanes lanes(root);
  std::vector<Rng> scalar;
  for (int l = 0; l < kSimdLanes; ++l) {
    uint64_t state =
        root ^ (0x9E3779B97F4A7C15ULL * (static_cast<uint64_t>(l) + 1));
    scalar.emplace_back(SplitMix64(state));
  }
  uint64_t out[kSimdLanes];
  for (int step = 0; step < 64; ++step) {
    lanes.NextLanes(out);
    for (int l = 0; l < kSimdLanes; ++l) {
      ASSERT_EQ(out[l], scalar[static_cast<size_t>(l)].NextU64())
          << "lane " << l << " step " << step;
    }
  }
}

TEST(SimdKernelTest, RngLanesLanesAreDistinct) {
  RngLanes lanes(12345);
  uint64_t out[kSimdLanes];
  lanes.NextLanes(out);
  for (int a = 0; a < kSimdLanes; ++a) {
    for (int b = a + 1; b < kSimdLanes; ++b) EXPECT_NE(out[a], out[b]);
  }
}

// --------------------------------------------------------------- dispatch

TEST(SimdKernelTest, AcceptThresholdEdgeCases) {
  const uint64_t two53 = uint64_t{1} << 53;
  EXPECT_EQ(simd::AcceptThreshold(0.0), 0u);
  EXPECT_EQ(simd::AcceptThreshold(1.0), two53);
  EXPECT_EQ(simd::AcceptThreshold(0.5), two53 / 2);
  // Monotone, and tiny-but-positive probabilities stay acceptable (ceil).
  EXPECT_GE(simd::AcceptThreshold(1e-300), 1u);
  EXPECT_LE(simd::AcceptThreshold(0.25), simd::AcceptThreshold(0.75));
}

TEST(SimdKernelTest, ScopedOverrideForcesScalar) {
  {
    simd::ScopedSimdBackendOverride force(simd::SimdBackend::kScalar);
    EXPECT_EQ(simd::ActiveSimdBackend(), simd::SimdBackend::kScalar);
  }
  // Restored: active backend is again whatever the host supports.
  EXPECT_EQ(simd::ActiveSimdBackend(),
            simd::SimdAvx2Compiled() && simd::SimdAvx2Supported()
                ? simd::SimdBackend::kAvx2
                : simd::SimdBackend::kScalar);
}

TEST(SimdKernelTest, BackendNamesAreStable) {
  EXPECT_STREQ(simd::SimdBackendName(simd::SimdBackend::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdBackendName(simd::SimdBackend::kAvx2), "avx2");
  EXPECT_STREQ(AliasKernelName(AliasKernel::kReplay), "replay");
  EXPECT_STREQ(AliasKernelName(AliasKernel::kPacked), "packed");
  EXPECT_STREQ(AliasKernelName(AliasKernel::kSimd), "simd");
}

}  // namespace
}  // namespace histk
