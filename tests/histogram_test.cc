#include "histogram/tiling.h"

#include <cmath>

#include <gtest/gtest.h>

#include "dist/generators.h"
#include "util/rng.h"

namespace histk {
namespace {

TilingHistogram MakeThreePiece() {
  // [0,2]=0.05, [3,5]=0.15, [6,9]=0.1 over n=10 (total mass exactly 1).
  return TilingHistogram(10, {{0, 2}, {3, 5}, {6, 9}}, {0.05, 0.15, 0.1});
}

TEST(TilingTest, ValueLookups) {
  const TilingHistogram h = MakeThreePiece();
  EXPECT_DOUBLE_EQ(h.Value(0), 0.05);
  EXPECT_DOUBLE_EQ(h.Value(2), 0.05);
  EXPECT_DOUBLE_EQ(h.Value(3), 0.15);
  EXPECT_DOUBLE_EQ(h.Value(5), 0.15);
  EXPECT_DOUBLE_EQ(h.Value(6), 0.1);
  EXPECT_DOUBLE_EQ(h.Value(9), 0.1);
  EXPECT_EQ(h.k(), 3);
}

TEST(TilingTest, FlatSinglePiece) {
  const TilingHistogram h = TilingHistogram::Flat(5, 0.2);
  for (int64_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(h.Value(i), 0.2);
  EXPECT_EQ(h.k(), 1);
}

TEST(TilingTest, FromRightEndsEquivalent) {
  const TilingHistogram h =
      TilingHistogram::FromRightEnds(10, {2, 5, 9}, {0.05, 0.15, 0.1});
  const TilingHistogram ref = MakeThreePiece();
  for (int64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(h.Value(i), ref.Value(i));
}

TEST(TilingDeathTest, RejectsGapsOverlapsAndBadCoverage) {
  EXPECT_DEATH(TilingHistogram(10, {{0, 2}, {4, 9}}, {0.1, 0.1}), "contiguous");
  EXPECT_DEATH(TilingHistogram(10, {{0, 5}, {4, 9}}, {0.1, 0.1}), "contiguous");
  EXPECT_DEATH(TilingHistogram(10, {{0, 2}, {3, 8}}, {0.1, 0.1}), "cover");
  EXPECT_DEATH(TilingHistogram(10, {{0, 9}}, {0.1, 0.1}), "arity");
}

TEST(TilingTest, MassOverPiecesAndPartialOverlaps) {
  const TilingHistogram h = MakeThreePiece();
  EXPECT_NEAR(h.Mass(Interval::Full(10)), 1.0, 1e-12);
  EXPECT_NEAR(h.Mass(Interval(0, 2)), 0.15, 1e-12);
  // Partial: one element of piece 1 and two of piece 2.
  EXPECT_NEAR(h.Mass(Interval(5, 7)), 0.15 + 2 * 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(h.Mass(Interval::Empty()), 0.0);
}

TEST(TilingTest, ToValuesRoundTrips) {
  const TilingHistogram h = MakeThreePiece();
  const auto v = h.ToValues();
  ASSERT_EQ(v.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(v[static_cast<size_t>(i)], h.Value(i));
}

TEST(TilingTest, L2ErrorMatchesBruteForce) {
  Rng rng(51);
  const HistogramSpec spec = MakeRandomKHistogram(40, 6, rng);
  const TilingHistogram h(40, {{0, 12}, {13, 25}, {26, 39}}, {0.03, 0.01, 0.035});
  const auto vals = h.ToValues();
  double brute = 0.0;
  for (int64_t i = 0; i < 40; ++i) {
    const double d = spec.dist.p(i) - vals[static_cast<size_t>(i)];
    brute += d * d;
  }
  EXPECT_NEAR(h.L2SquaredErrorTo(spec.dist), brute, 1e-12);
}

TEST(TilingTest, L1ErrorMatchesBruteForce) {
  Rng rng(52);
  const HistogramSpec spec = MakeRandomKHistogram(40, 6, rng);
  const TilingHistogram h(40, {{0, 9}, {10, 39}}, {0.02, 0.026});
  const auto vals = h.ToValues();
  double brute = 0.0;
  for (int64_t i = 0; i < 40; ++i) {
    brute += std::fabs(spec.dist.p(i) - vals[static_cast<size_t>(i)]);
  }
  EXPECT_NEAR(h.L1ErrorTo(spec.dist), brute, 1e-12);
}

TEST(TilingTest, ErrorZeroAgainstItself) {
  const TilingHistogram h = MakeThreePiece();
  const Distribution d = h.ToDistribution();
  EXPECT_NEAR(h.L2SquaredErrorTo(d), 0.0, 1e-15);
  EXPECT_NEAR(h.L1ErrorTo(d), 0.0, 1e-12);
}

TEST(TilingTest, ToDistributionClampsNegatives) {
  const TilingHistogram h(4, {{0, 1}, {2, 3}}, {-0.5, 1.0});
  const Distribution d = h.ToDistribution();
  EXPECT_DOUBLE_EQ(d.p(0), 0.0);
  EXPECT_DOUBLE_EQ(d.p(2), 0.5);
}

TEST(TilingTest, CondensedMergesEqualNeighbours) {
  const TilingHistogram h(10, {{0, 2}, {3, 5}, {6, 9}}, {0.1, 0.1, 0.2});
  const TilingHistogram c = h.Condensed();
  EXPECT_EQ(c.k(), 2);
  for (int64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(c.Value(i), h.Value(i));
}

TEST(TilingTest, CondensedWithToleranceMerges) {
  const TilingHistogram h(6, {{0, 1}, {2, 3}, {4, 5}}, {0.1, 0.1001, 0.3});
  EXPECT_EQ(h.Condensed(0.01).k(), 2);
  EXPECT_EQ(h.Condensed(0.0).k(), 3);
}

}  // namespace
}  // namespace histk
