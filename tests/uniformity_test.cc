#include "baseline/uniformity.h"

#include <gtest/gtest.h>

#include "dist/generators.h"

namespace histk {
namespace {

Distribution HalfSupportUniform(int64_t n, Rng& rng) {
  std::vector<double> w(static_cast<size_t>(n), 0.0);
  for (int64_t v : rng.SampleDistinct(n, n / 2)) w[static_cast<size_t>(v)] = 1.0;
  return Distribution::FromWeights(std::move(w));
}

TEST(UniformityTest, AcceptsUniformL2) {
  const AliasSampler sampler(Distribution::Uniform(1024));
  Rng rng(111);
  int accepted = 0;
  for (int t = 0; t < 20; ++t) {
    accepted += TestUniformity(sampler, 0.1, Norm::kL2, rng).accepted ? 1 : 0;
  }
  EXPECT_GE(accepted, 18);
}

TEST(UniformityTest, AcceptsUniformL1) {
  const AliasSampler sampler(Distribution::Uniform(1024));
  Rng rng(112);
  int accepted = 0;
  for (int t = 0; t < 20; ++t) {
    accepted += TestUniformity(sampler, 0.25, Norm::kL1, rng).accepted ? 1 : 0;
  }
  EXPECT_GE(accepted, 18);
}

TEST(UniformityTest, RejectsHalfSupportL1) {
  Rng rng(113);
  const Distribution far = HalfSupportUniform(1024, rng);
  // ||far - uniform||_1 = 1, far above eps = 0.25.
  const AliasSampler sampler(far);
  int rejected = 0;
  for (int t = 0; t < 20; ++t) {
    rejected += TestUniformity(sampler, 0.25, Norm::kL1, rng).accepted ? 0 : 1;
  }
  EXPECT_GE(rejected, 18);
}

TEST(UniformityTest, RejectsPointMassL2) {
  const AliasSampler sampler(Distribution::PointMass(256, 17));
  Rng rng(114);
  for (int t = 0; t < 5; ++t) {
    EXPECT_FALSE(TestUniformity(sampler, 0.2, Norm::kL2, rng).accepted);
  }
}

TEST(UniformityTest, CollisionRateNearL2NormSquared) {
  const Distribution d = MakeZipf(128, 1.0);
  const AliasSampler sampler(d);
  Rng rng(115);
  const SampleSet s = SampleSet::Draw(sampler, 300000, rng);
  const UniformityResult res = TestUniformityOnSamples(s, 0.1, Norm::kL2);
  EXPECT_NEAR(res.collision_rate, d.L2NormSquared(), 5e-4);
}

TEST(UniformityTest, ThresholdsDifferByNorm) {
  const AliasSampler sampler(Distribution::Uniform(64));
  Rng rng(116);
  const SampleSet s = SampleSet::Draw(sampler, 10000, rng);
  const auto l1 = TestUniformityOnSamples(s, 0.2, Norm::kL1);
  const auto l2 = TestUniformityOnSamples(s, 0.2, Norm::kL2);
  EXPECT_NEAR(l1.threshold, (1.0 + 0.01) / 64.0, 1e-12);
  EXPECT_NEAR(l2.threshold, 1.0 / 64.0 + 0.02, 1e-12);
}

TEST(UniformityTest, ScaleControlsSampleCount) {
  const AliasSampler sampler(Distribution::Uniform(256));
  Rng rng(117);
  const auto full = TestUniformity(sampler, 0.2, Norm::kL1, rng, 1.0);
  const auto half = TestUniformity(sampler, 0.2, Norm::kL1, rng, 0.5);
  EXPECT_NEAR(static_cast<double>(half.samples_used) /
                  static_cast<double>(full.samples_used),
              0.5, 0.01);
}

}  // namespace
}  // namespace histk
