// Property-based suites: randomized invariants swept over seeds via
// parameterized tests. These complement the example-based unit tests with
// structural guarantees that must hold on arbitrary inputs.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/histk.h"
#include "util/math_util.h"

namespace histk {
namespace {

Distribution RandomDistribution(Rng& rng, int64_t n, double zero_frac = 0.2) {
  std::vector<double> w(static_cast<size_t>(n));
  for (auto& x : w) x = rng.NextDouble() < zero_frac ? 0.0 : rng.NextDouble();
  if (std::all_of(w.begin(), w.end(), [](double x) { return x == 0.0; })) w[0] = 1.0;
  return Distribution::FromWeights(std::move(w));
}

// ---------------------------------------------------------------- learner

class GreedyPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(GreedyPropertyTest, OutputInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const int64_t n = 32 + static_cast<int64_t>(rng.UniformInt(64));
  const int64_t k = 1 + static_cast<int64_t>(rng.UniformInt(5));
  const double eps = 0.15 + 0.2 * rng.NextDouble();
  const Distribution p = RandomDistribution(rng, n);
  const AliasSampler sampler(p);

  LearnOptions opt;
  opt.k = k;
  opt.eps = eps;
  opt.sample_scale = 0.2;  // keep the sweep fast
  const LearnResult res = LearnHistogram(sampler, opt, rng);

  // 1. Theorem band (held generously even at reduced budget).
  const double opt_sse = VOptimalSse(p, k);
  EXPECT_LE(res.tiling.L2SquaredErrorTo(p), opt_sse + 5 * eps + 1e-9);

  // 2. The flattened priority histogram and the reported tiling agree.
  const TilingHistogram flat = res.priority.Flatten();
  for (int64_t i = 0; i < n; i += std::max<int64_t>(1, n / 17)) {
    EXPECT_DOUBLE_EQ(flat.Value(i), res.tiling.Value(i));
  }

  // 3. Priority entry count: <= 3 per iteration.
  EXPECT_LE(res.priority.size(), 3 * res.params.iterations);

  // 4. Histogram values are non-negative (densities of weight estimates).
  for (double v : res.tiling.values()) EXPECT_GE(v, 0.0);

  // 5. Sample accounting.
  EXPECT_EQ(res.total_samples, res.params.l + res.params.r * res.params.m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyPropertyTest, ::testing::Range<int64_t>(1, 9));

// ---------------------------------------------------------------- tester

class TesterPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(TesterPropertyTest, PartitionInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
  const int64_t n = 64 + static_cast<int64_t>(rng.UniformInt(192));
  const int64_t k = 1 + static_cast<int64_t>(rng.UniformInt(6));
  const Distribution p = RandomDistribution(rng, n);
  const AliasSampler sampler(p);

  TestConfig cfg;
  cfg.k = k;
  cfg.eps = 0.3;
  cfg.norm = GetParam() % 2 == 0 ? Norm::kL2 : Norm::kL1;
  cfg.sample_scale = cfg.norm == Norm::kL1 ? 0.005 : 0.2;
  cfg.r_override = 7;
  const TestOutcome out = TestKHistogram(sampler, cfg, rng);

  // 1. At most k pieces, contiguous from zero, non-empty.
  EXPECT_LE(out.flat_partition.size(), static_cast<size_t>(k));
  int64_t expect_lo = 0;
  for (const Interval& piece : out.flat_partition) {
    EXPECT_EQ(piece.lo, expect_lo);
    EXPECT_FALSE(piece.empty());
    expect_lo = piece.hi + 1;
  }
  // 2. Accepted iff the partition covers the whole domain.
  EXPECT_EQ(out.accepted, expect_lo == n);
  // 3. Sample accounting.
  EXPECT_EQ(out.total_samples, out.params.r * out.params.m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TesterPropertyTest, ::testing::Range<int64_t>(1, 11));

TEST(TesterPropertyTest, ExactHistogramsAcceptedAcrossSizes) {
  // Completeness sweep: every generated k-histogram must be accepted by
  // the L2 tester with generous samples (fresh instance each round).
  Rng rng(424242);
  int accepted = 0;
  const int rounds = 12;
  for (int t = 0; t < rounds; ++t) {
    const int64_t n = 128 << (t % 3);
    const int64_t k = 2 + (t % 4);
    const HistogramSpec spec = MakeRandomKHistogram(n, k, rng, 25.0);
    TestConfig cfg;
    cfg.k = k;
    cfg.eps = 0.3;
    cfg.norm = Norm::kL2;
    cfg.r_override = 9;
    const AliasSampler sampler(spec.dist);
    accepted += TestKHistogram(sampler, cfg, rng).accepted ? 1 : 0;
  }
  EXPECT_GE(accepted, rounds - 2);
}

// ---------------------------------------------------------------- sample set

class SampleSetPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SampleSetPropertyTest, CountsAndCollisionsMatchBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337);
  const int64_t n = 8 + static_cast<int64_t>(rng.UniformInt(56));
  const int64_t m = 1 + static_cast<int64_t>(rng.UniformInt(400));
  std::vector<int64_t> draws(static_cast<size_t>(m));
  // Skewed draws so repeats (collisions) actually occur.
  for (auto& d : draws) {
    d = static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(1 + n / 3)));
  }
  const SampleSet s = SampleSet::FromDraws(n, draws);

  std::vector<int64_t> occ(static_cast<size_t>(n), 0);
  for (int64_t d : draws) ++occ[static_cast<size_t>(d)];

  Rng qrng(static_cast<uint64_t>(GetParam()));
  for (int q = 0; q < 25; ++q) {
    const int64_t lo = qrng.UniformInRange(0, n - 1);
    const int64_t hi = qrng.UniformInRange(lo, n - 1);
    int64_t cnt = 0;
    uint64_t coll = 0;
    for (int64_t i = lo; i <= hi; ++i) {
      cnt += occ[static_cast<size_t>(i)];
      coll += PairCount(static_cast<uint64_t>(occ[static_cast<size_t>(i)]));
    }
    EXPECT_EQ(s.Count(Interval(lo, hi)), cnt);
    EXPECT_EQ(s.Collisions(Interval(lo, hi)), coll);
  }
  // Additivity: disjoint halves sum to the whole.
  const int64_t mid = n / 2;
  EXPECT_EQ(s.Count(Interval(0, mid - 1)) + s.Count(Interval(mid, n - 1)),
            s.Count(Interval::Full(n)));
  EXPECT_EQ(s.Collisions(Interval(0, mid - 1)) + s.Collisions(Interval(mid, n - 1)),
            s.Collisions(Interval::Full(n)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampleSetPropertyTest, ::testing::Range<int64_t>(1, 13));

// ---------------------------------------------------------------- DP

class DpPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(DpPropertyTest, StructuralInvariants) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 65537);
  const int64_t n = 16 + static_cast<int64_t>(rng.UniformInt(48));
  const Distribution p = RandomDistribution(rng, n, 0.3);

  // k=1 equals the single-interval SSE.
  EXPECT_NEAR(VOptimalSse(p, 1), p.IntervalSse(Interval::Full(n)), 1e-12);

  double prev = std::numeric_limits<double>::infinity();
  for (int64_t k = 1; k <= std::min<int64_t>(n, 9); ++k) {
    const VOptimalResult res = VOptimalHistogram(p, k);
    // Monotone non-increasing in k.
    EXPECT_LE(res.sse, prev + 1e-12);
    prev = res.sse;
    // Claimed error is achieved by the reconstruction.
    EXPECT_NEAR(res.histogram.L2SquaredErrorTo(p), res.sse, 1e-10);
    // The DP optimum lower-bounds every heuristic k-piece construction.
    EXPECT_LE(res.sse, GreedyMergeExact(p, k).L2SquaredErrorTo(p) + 1e-12);
    EXPECT_LE(res.sse, EquiWidthExact(p, k).L2SquaredErrorTo(p) + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DpPropertyTest, ::testing::Range<int64_t>(1, 11));

// ---------------------------------------------------------------- reduction

class ReducePropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(ReducePropertyTest, ReductionDominatesNaiveMerges) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7);
  // Random tiling with random values.
  const int64_t n = 60;
  std::vector<int64_t> cuts = rng.SampleDistinct(n - 1, 7);
  std::vector<int64_t> ends(cuts.begin(), cuts.end());
  ends.push_back(n - 1);
  std::vector<double> vals(ends.size());
  for (auto& v : vals) v = 0.01 + rng.NextDouble();
  // Normalize so the histogram IS its own distribution (total mass 1).
  double mass = 0.0;
  int64_t lo = 0;
  for (size_t j = 0; j < ends.size(); ++j) {
    mass += vals[j] * static_cast<double>(ends[j] - lo + 1);
    lo = ends[j] + 1;
  }
  for (auto& v : vals) v /= mass;
  const TilingHistogram h = TilingHistogram::FromRightEnds(n, ends, std::move(vals));
  const Distribution href = h.ToDistribution();

  for (int64_t k : {2, 4, 6}) {
    const TilingHistogram r = ReduceToKPieces(h, k);
    EXPECT_LE(r.k(), k);
    const double red_err = r.L2SquaredErrorTo(href);
    // Dominates merging down via the greedy-merge heuristic restricted to
    // the same boundary set (a valid competitor).
    const double merge_err = GreedyMergeExact(href, k).L2SquaredErrorTo(href);
    // GreedyMergeExact works at element granularity (superset of options),
    // so it may be better; the reduction must stay within its ballpark and
    // both must dominate the flat 1-piece error for k > 1.
    if (k > 1) {
      EXPECT_LE(red_err, VOptimalSse(href, 1) + 1e-12);
      EXPECT_LE(merge_err, VOptimalSse(href, 1) + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducePropertyTest, ::testing::Range<int64_t>(1, 7));

// ---------------------------------------------------------------- flatness

class FlatnessPropertyTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(FlatnessPropertyTest, FlatIntervalsOfHistogramsAccepted) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 13);
  const int64_t n = 128;
  const HistogramSpec spec = MakeRandomKHistogram(n, 4, rng, 10.0);
  const AliasSampler sampler(spec.dist);
  const SampleSetGroup group = SampleSetGroup::Draw(sampler, 7, 60000, rng);

  int64_t lo = 0;
  for (int64_t end : spec.right_ends) {
    const Interval piece(lo, end);
    EXPECT_TRUE(TestFlatnessL2(group, piece, 0.3).accept) << piece.ToString();
    // Sub-intervals of flat pieces are flat too.
    if (piece.length() >= 4) {
      const Interval sub(piece.lo + piece.length() / 4,
                         piece.hi - piece.length() / 4);
      EXPECT_TRUE(TestFlatnessL2(group, sub, 0.3).accept) << sub.ToString();
    }
    lo = end + 1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatnessPropertyTest, ::testing::Range<int64_t>(1, 7));

}  // namespace
}  // namespace histk
