#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace histk {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(4);
  double acc = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) acc += rng.NextDouble();
  EXPECT_NEAR(acc / trials, 0.5, 0.01);
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(5);
  for (uint64_t bound : {1ull, 2ull, 3ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(bound), bound);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(7);
  const int buckets = 10, trials = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < trials; ++i) ++counts[rng.UniformInt(buckets)];
  // Chi-square with 9 dof: 99.9% quantile ~ 27.9.
  double chi2 = 0.0;
  const double expect = static_cast<double>(trials) / buckets;
  for (int c : counts) chi2 += (c - expect) * (c - expect) / expect;
  EXPECT_LT(chi2, 30.0);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(9);
  const int trials = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < trials; ++i) {
    const double z = rng.Normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.02);
  EXPECT_NEAR(sumsq / trials, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // Child and parent outputs should not track each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(12);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // probability of identity is astronomically small
}

TEST(RngTest, SampleDistinctBasicProperties) {
  Rng rng(14);
  for (int64_t count : {0ll, 1ll, 5ll, 20ll, 40ll}) {
    const auto s = rng.SampleDistinct(40, count);
    EXPECT_EQ(static_cast<int64_t>(s.size()), count);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::set<int64_t>(s.begin(), s.end()).size(), s.size());
    for (int64_t v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 40);
    }
  }
}

TEST(RngTest, SampleDistinctFullRangeIsIdentitySet) {
  Rng rng(15);
  const auto s = rng.SampleDistinct(10, 10);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(s[static_cast<size_t>(i)], i);
}

TEST(RngTest, SampleDistinctIsUnbiasedish) {
  // Every element should be chosen with frequency ~ count/n.
  Rng rng(16);
  std::vector<int> hits(20, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (int64_t v : rng.SampleDistinct(20, 5)) ++hits[static_cast<size_t>(v)];
  }
  for (int h : hits) {
    EXPECT_NEAR(static_cast<double>(h) / trials, 0.25, 0.02);
  }
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  uint64_t state2 = 0;
  EXPECT_EQ(first, SplitMix64(state2));
  EXPECT_NE(SplitMix64(state), first);
}

}  // namespace
}  // namespace histk
