// Facade parity: for a fixed seed and an unlimited budget, Engine::Run must
// reproduce the legacy free functions byte for byte — identical tilings,
// priority entries, partitions, and sample counts — and a finite budget
// must never abort: it yields outcome kBudgetExhausted with samples_drawn
// <= budget and partial phase telemetry.
#include "engine/engine.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/tester.h"
#include "dist/generators.h"
#include "dist/sampler.h"
#include "util/rng.h"

namespace histk {
namespace {

Distribution LearnDist() {
  Rng rng(2024);
  return MakeRandomKHistogram(/*n=*/128, /*k=*/4, rng, 12.0).dist;
}

void ExpectSameTiling(const TilingHistogram& a, const TilingHistogram& b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.k(), b.k());
  for (int64_t j = 0; j < a.k(); ++j) {
    EXPECT_EQ(a.pieces()[static_cast<size_t>(j)], b.pieces()[static_cast<size_t>(j)]);
    // Bitwise equality, not almost-equal: the facade must replay the exact
    // arithmetic of the legacy path.
    EXPECT_EQ(a.values()[static_cast<size_t>(j)], b.values()[static_cast<size_t>(j)]);
  }
}

void ExpectSameLearnResult(const LearnResult& a, const LearnResult& b) {
  ExpectSameTiling(a.tiling, b.tiling);
  ASSERT_EQ(a.priority.size(), b.priority.size());
  for (int64_t i = 0; i < a.priority.size(); ++i) {
    const PriorityEntry& ea = a.priority.entries()[static_cast<size_t>(i)];
    const PriorityEntry& eb = b.priority.entries()[static_cast<size_t>(i)];
    EXPECT_EQ(ea.interval, eb.interval);
    EXPECT_EQ(ea.value, eb.value);
    EXPECT_EQ(ea.rank, eb.rank);
  }
  EXPECT_EQ(a.params.l, b.params.l);
  EXPECT_EQ(a.params.r, b.params.r);
  EXPECT_EQ(a.params.m, b.params.m);
  EXPECT_EQ(a.params.iterations, b.params.iterations);
  EXPECT_EQ(a.total_samples, b.total_samples);
  EXPECT_EQ(a.candidates_per_iter, b.candidates_per_iter);
  EXPECT_EQ(a.estimated_cost, b.estimated_cost);
}

LearnOptions SmallLearnOptions() {
  LearnOptions options;
  options.k = 4;
  options.eps = 0.25;
  options.sample_scale = 0.05;
  return options;
}

TEST(EngineParityTest, LearnReproducesFreeFunction) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);

  const LearnOptions options = SmallLearnOptions();
  Rng legacy_rng(77);
  const LearnResult legacy = LearnHistogram(sampler, options, legacy_rng);

  const Engine engine(sampler);
  LearnSpec spec;
  spec.seed = 77;
  spec.options = options;
  const Result<Report> run = engine.Run(spec);
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->outcome, TaskOutcome::kOk);
  ASSERT_TRUE(run->learn.has_value());
  ExpectSameLearnResult(*run->learn, legacy);
  EXPECT_EQ(run->telemetry.samples_drawn, legacy.total_samples);
}

TEST(EngineParityTest, LearnReproducesFreeFunctionFullEnumeration) {
  Rng gen_rng(5);
  const Distribution d = MakeRandomKHistogram(/*n=*/24, /*k=*/3, gen_rng, 8.0).dist;
  const AliasSampler sampler(d);

  LearnOptions options;
  options.k = 3;
  options.eps = 0.3;
  options.sample_scale = 0.02;
  options.strategy = CandidateStrategy::kAllIntervals;
  Rng legacy_rng(9);
  const LearnResult legacy = LearnHistogram(sampler, options, legacy_rng);

  const Engine engine(sampler);
  LearnSpec spec;
  spec.seed = 9;
  spec.options = options;
  const Result<Report> run = engine.Run(spec);
  ASSERT_TRUE(run.ok());
  ExpectSameLearnResult(*run->learn, legacy);
}

TEST(EngineParityTest, TestReproducesFreeFunctionBothNorms) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  for (const Norm norm : {Norm::kL2, Norm::kL1}) {
    TestConfig config;
    config.k = 4;
    config.eps = 0.3;
    config.norm = norm;
    config.sample_scale = norm == Norm::kL2 ? 0.05 : 0.0005;
    config.r_override = 9;  // keep the parity check fast; the override is
                            // itself part of the replicated surface
    Rng legacy_rng(31);
    const TestOutcome legacy = TestKHistogram(sampler, config, legacy_rng);

    TestSpec spec;
    spec.seed = 31;
    spec.config = config;
    const Result<Report> run = engine.Run(spec);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run->test.has_value());
    const TestOutcome& facade = *run->test;
    EXPECT_EQ(facade.accepted, legacy.accepted);
    EXPECT_EQ(facade.flat_partition.size(), legacy.flat_partition.size());
    for (size_t i = 0; i < legacy.flat_partition.size(); ++i) {
      EXPECT_EQ(facade.flat_partition[i], legacy.flat_partition[i]);
    }
    EXPECT_EQ(facade.params.r, legacy.params.r);
    EXPECT_EQ(facade.params.m, legacy.params.m);
    EXPECT_EQ(facade.total_samples, legacy.total_samples);
    EXPECT_EQ(run->outcome,
              legacy.accepted ? TaskOutcome::kAccepted : TaskOutcome::kRejected);
  }
}

TEST(EngineParityTest, ExactBudgetMatchesUnlimited) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  LearnSpec spec;
  spec.seed = 123;
  spec.options = SmallLearnOptions();
  const Report unlimited = *engine.Run(spec);
  ASSERT_EQ(unlimited.outcome, TaskOutcome::kOk);

  LearnSpec exact = spec;
  exact.budget = unlimited.telemetry.samples_drawn;
  const Report capped = *engine.Run(exact);
  ASSERT_EQ(capped.outcome, TaskOutcome::kOk);
  ExpectSameLearnResult(*capped.learn, *unlimited.learn);
}

TEST(EngineParityTest, BudgetExhaustionMidLearnNeverAborts) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  LearnSpec spec;
  spec.seed = 123;
  spec.options = SmallLearnOptions();
  const Report full = *engine.Run(spec);
  const int64_t needed = full.telemetry.samples_drawn;
  ASSERT_GT(needed, 2);

  // Mid-learn: enough for the main phase but not the collision sets.
  const int64_t main_samples = full.telemetry.phases[0].samples;
  LearnSpec capped = spec;
  capped.budget = main_samples + 1;
  const Report partial = *engine.Run(capped);
  EXPECT_EQ(partial.outcome, TaskOutcome::kBudgetExhausted);
  EXPECT_LE(partial.telemetry.samples_drawn, capped.budget);
  EXPECT_FALSE(partial.learn.has_value());
  // Partial telemetry: the main phase completed, the collision phase shows
  // whatever fit (here: nothing).
  ASSERT_EQ(partial.telemetry.phases.size(), 2u);
  EXPECT_EQ(partial.telemetry.phases[0].phase, "learn-main");
  EXPECT_EQ(partial.telemetry.phases[0].samples, main_samples);
  EXPECT_EQ(partial.telemetry.phases[1].phase, "learn-collisions");

  // A budget below even the main phase still reports cleanly.
  capped.budget = 1;
  const Report tiny = *engine.Run(capped);
  EXPECT_EQ(tiny.outcome, TaskOutcome::kBudgetExhausted);
  EXPECT_EQ(tiny.telemetry.samples_drawn, 0);
}

TEST(EngineParityTest, BudgetExhaustionMidTestNeverAborts) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  TestSpec spec;
  spec.seed = 55;
  spec.config.k = 4;
  spec.config.eps = 0.3;
  spec.config.norm = Norm::kL2;
  spec.config.sample_scale = 0.05;
  const Report full = *engine.Run(spec);
  ASSERT_NE(full.outcome, TaskOutcome::kBudgetExhausted);
  const int64_t needed = full.telemetry.samples_drawn;

  TestSpec capped = spec;
  capped.budget = needed / 2;
  const Report partial = *engine.Run(capped);
  EXPECT_EQ(partial.outcome, TaskOutcome::kBudgetExhausted);
  EXPECT_LE(partial.telemetry.samples_drawn, capped.budget);
  EXPECT_FALSE(partial.test.has_value());
  ASSERT_EQ(partial.telemetry.phases.size(), 1u);
  EXPECT_EQ(partial.telemetry.phases[0].phase, "test-draw");
  EXPECT_GT(partial.telemetry.phases[0].samples, 0);
}

std::string ReportJson(const Report& report) {
  std::ostringstream os;
  WriteReportJson(os, report);
  return os.str();
}

TEST(EngineParityTest, PropertyTestReproducesFreeFunction) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  PropertyTestConfig config;
  config.k = 4;
  config.eps = 0.3;
  config.sample_scale = 0.1;
  Rng legacy_rng(41);
  const PropertyTestOutcome legacy = TestIsKHistogram(sampler, config, legacy_rng);

  PropertyTestSpec spec;
  spec.seed = 41;
  spec.config = config;
  const Result<Report> run = engine.Run(spec);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->property_test.has_value());
  const PropertyTestOutcome& facade = *run->property_test;
  EXPECT_EQ(facade.accepted, legacy.accepted);
  EXPECT_EQ(facade.refinement_parts, legacy.refinement_parts);
  EXPECT_EQ(facade.fitted_pieces, legacy.fitted_pieces);
  // Bitwise: the facade replays the exact arithmetic of the free function.
  EXPECT_EQ(facade.fit_stat, legacy.fit_stat);
  EXPECT_EQ(facade.collision_stat, legacy.collision_stat);
  EXPECT_EQ(facade.exception_parts, legacy.exception_parts);
  EXPECT_EQ(facade.exception_mass, legacy.exception_mass);
  EXPECT_EQ(facade.total_samples, legacy.total_samples);
  ASSERT_TRUE(facade.candidate.has_value());
  ExpectSameTiling(*facade.candidate, *legacy.candidate);
  EXPECT_EQ(run->outcome,
            legacy.accepted ? TaskOutcome::kAccepted : TaskOutcome::kRejected);
  EXPECT_EQ(run->telemetry.samples_drawn, legacy.total_samples);
}

TEST(EngineParityTest, ClosenessReproducesFreeFunction) {
  const Distribution d = LearnDist();
  Rng gen(99);
  const Distribution e = MakeRandomKHistogram(/*n=*/128, /*k=*/4, gen, 12.0).dist;
  const AliasSampler sampler_p(d);
  const AliasSampler sampler_q(e);
  const Engine engine(sampler_p);

  ClosenessConfig config;
  config.k_p = 4;
  config.k_q = 4;
  config.eps = 0.3;
  config.sample_scale = 0.1;
  Rng legacy_rng(43);
  const ClosenessOutcome legacy = TestCloseness(sampler_p, sampler_q, config, legacy_rng);

  ClosenessSpec spec;
  spec.seed = 43;
  spec.config = config;
  spec.other = &sampler_q;
  const Result<Report> run = engine.Run(spec);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->closeness.has_value());
  const ClosenessOutcome& facade = *run->closeness;
  EXPECT_EQ(facade.accepted, legacy.accepted);
  EXPECT_EQ(facade.refinement_parts, legacy.refinement_parts);
  EXPECT_EQ(facade.statistic, legacy.statistic);
  EXPECT_EQ(facade.threshold, legacy.threshold);
  EXPECT_EQ(facade.total_samples, legacy.total_samples);
  ExpectSameTiling(*facade.candidate_p, *legacy.candidate_p);
  ExpectSameTiling(*facade.candidate_q, *legacy.candidate_q);
  EXPECT_EQ(run->outcome,
            legacy.accepted ? TaskOutcome::kAccepted : TaskOutcome::kRejected);
}

TEST(EngineParityTest, PropertySpecsAreThreadCountInvariant) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  PropertyTestSpec pspec;
  pspec.seed = 53;
  pspec.config.k = 4;
  pspec.config.eps = 0.3;
  pspec.config.sample_scale = 0.1;
  pspec.draw_threads = 1;
  Report p1 = *engine.Run(pspec);
  pspec.draw_threads = 4;
  Report p4 = *engine.Run(pspec);
  p1.telemetry.wall_ms = 0.0;
  p4.telemetry.wall_ms = 0.0;
  EXPECT_EQ(ReportJson(p1), ReportJson(p4));

  const AliasSampler sampler_q(d);
  ClosenessSpec cspec;
  cspec.seed = 57;
  cspec.config.k_p = 4;
  cspec.config.k_q = 4;
  cspec.config.eps = 0.3;
  cspec.config.sample_scale = 0.1;
  cspec.other = &sampler_q;
  cspec.draw_threads = 1;
  Report c1 = *engine.Run(cspec);
  cspec.draw_threads = 3;
  Report c3 = *engine.Run(cspec);
  c1.telemetry.wall_ms = 0.0;
  c3.telemetry.wall_ms = 0.0;
  EXPECT_EQ(ReportJson(c1), ReportJson(c3));
}

TEST(EngineParityTest, ClosenessSpecValidation) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  ClosenessSpec spec;
  spec.config.k_p = 4;
  spec.config.k_q = 4;
  spec.config.eps = 0.3;
  // No second oracle.
  EXPECT_FALSE(engine.Run(spec).ok());
  // Mismatched domain.
  const AliasSampler small(Distribution::Uniform(64));
  spec.other = &small;
  EXPECT_FALSE(engine.Run(spec).ok());
}

TEST(EngineParityTest, ReportsAreThreadCountInvariant) {
  const Distribution d = LearnDist();
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  LearnSpec spec;
  spec.seed = 77;
  spec.options = SmallLearnOptions();
  spec.budget = 1'000'000;
  spec.draw_threads = 1;
  Report r1 = *engine.Run(spec);
  spec.draw_threads = 4;
  Report r4 = *engine.Run(spec);
  // Wall time necessarily differs; everything else must be byte-identical.
  r1.telemetry.wall_ms = 0.0;
  r4.telemetry.wall_ms = 0.0;
  EXPECT_EQ(ReportJson(r1), ReportJson(r4));
  ExpectSameLearnResult(*r1.learn, *r4.learn);

  TestSpec tspec;
  tspec.seed = 31;
  tspec.config.k = 4;
  tspec.config.eps = 0.3;
  tspec.config.norm = Norm::kL2;
  tspec.config.sample_scale = 0.05;
  tspec.draw_threads = 1;
  Report t1 = *engine.Run(tspec);
  tspec.draw_threads = 3;
  Report t3 = *engine.Run(tspec);
  t1.telemetry.wall_ms = 0.0;
  t3.telemetry.wall_ms = 0.0;
  EXPECT_EQ(ReportJson(t1), ReportJson(t3));
}

}  // namespace
}  // namespace histk
