// The contract layer (src/util/check.h) under both of its regimes:
//
//   * Always-on HISTK_CHECK / HISTK_CHECK_MSG guard construction-time
//     well-formedness in every build mode — corrupted pmfs and broken
//     tilings must abort, Release included.
//   * HISTK_DCHECK / HISTK_CHECK_INVARIANT are active exactly when
//     HISTK_CHECKS_ENABLED (Debug, or -DHISTK_ENABLE_CHECKS=ON — the
//     `checks` CI job) and compile to nothing otherwise: zero evaluations,
//     zero cost on the hot paths they instrument.
//
// Death tests pin the failure messages so a tripped invariant stays
// attributable from a CI log alone.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distribution.h"
#include "dist/generators.h"
#include "dist/sampler.h"
#include "engine/budget.h"
#include "histogram/tiling.h"
#include "stream/concurrent_histogram.h"
#include "stream/log_bucket.h"
#include "util/check.h"
#include "util/interval.h"
#include "util/rng.h"

namespace histk {
namespace {

using CheckDeathTest = ::testing::Test;

// ------------------------------------------------- always-on checks

TEST(CheckDeathTest, UnnormalizedPmfAborts) {
  // Sums to 0.6: FromPmf's normalization contract is always-on.
  EXPECT_DEATH(Distribution::FromPmf({0.3, 0.3}), "pmf");
}

TEST(CheckDeathTest, NegativePmfEntryAborts) {
  EXPECT_DEATH(Distribution::FromPmf({1.5, -0.5}), "pmf");
}

TEST(CheckDeathTest, TilingWithGapAborts) {
  // [0,1] then [3,3] leaves element 2 uncovered.
  EXPECT_DEATH(
      TilingHistogram(4, {Interval(0, 1), Interval(3, 3)}, {0.1, 0.2}),
      "contiguous");
}

TEST(CheckDeathTest, TilingWithOverlapAborts) {
  EXPECT_DEATH(
      TilingHistogram(4, {Interval(0, 2), Interval(2, 3)}, {0.1, 0.2}),
      "contiguous");
}

TEST(CheckDeathTest, TilingShortCoverAborts) {
  EXPECT_DEATH(TilingHistogram(8, {Interval(0, 3)}, {0.125}), "cover");
}

// ------------------------------------------------- gated checks

TEST(CheckTest, GatedMacrosEvaluateExactlyWhenEnabled) {
  int evals = 0;
  HISTK_DCHECK(++evals > 0);
  HISTK_DCHECK_MSG(++evals > 0, "side effect counter");
  HISTK_CHECK_INVARIANT(++evals > 0, "side effect counter");
  // Zero-cost contract: compiled out entirely unless the gate is on.
  EXPECT_EQ(evals, HISTK_CHECKS_ENABLED ? 3 : 0);
}

TEST(CheckDeathTest, InvariantAbortsWithContextWhenEnabled) {
#if HISTK_CHECKS_ENABLED
  EXPECT_DEATH(HISTK_CHECK_INVARIANT(1 + 1 == 3, "arithmetic broke"),
               "arithmetic broke");
#else
  HISTK_CHECK_INVARIANT(1 + 1 == 3, "arithmetic broke");  // must be a no-op
#endif
}

// ------------------------------------------------- telemetry snapshots

// Mantissa-width agreement is an always-on contract: merging sketches from
// two differently-configured processes is data corruption, not a nuisance.
TEST(CheckDeathTest, SnapshotMergeWidthMismatchAborts) {
  const ConcurrentHistogram a(/*mantissa_bits=*/7);
  const ConcurrentHistogram b(/*mantissa_bits=*/8);
  HistogramSnapshot snap = a.Snapshot();
  EXPECT_DEATH(snap.Merge(b.Snapshot()), "mantissa");
}

TEST(CheckDeathTest, SnapshotDeltaRequiresDominationAlwaysOn) {
  ConcurrentHistogram hist(/*mantissa_bits=*/7);
  hist.Record(3, 5);
  const HistogramSnapshot later = hist.Snapshot();
  hist.Record(3, 1);
  const HistogramSnapshot even_later = hist.Snapshot();
  // Arguments swapped: the "earlier" snapshot dominates, which can only
  // mean the pair is not ordered — always-on abort.
  EXPECT_DEATH(later.DeltaSince(even_later), "dominate");
}

TEST(CheckDeathTest, QuantileOfEmptySnapshotAborts) {
  const ConcurrentHistogram hist;
  EXPECT_DEATH(hist.Snapshot().Quantile(0.5), "empty snapshot");
}

// Count conservation (total == sum of buckets) is the gated invariant:
// FromCounts re-verifies it in checks builds and compiles to nothing
// otherwise (Snapshot() computes the total from the same loads, so the
// hot path never pays for it).
TEST(CheckDeathTest, SnapshotCountConservationIsGated) {
  std::vector<uint64_t> counts(LogBucketKeyCount(7), 0);
  counts[3] = 4;
#if HISTK_CHECKS_ENABLED
  EXPECT_DEATH(HistogramSnapshot::FromCounts(7, counts, /*total=*/5),
               "snapshot total must equal the sum of bucket counts");
#else
  const HistogramSnapshot snap =
      HistogramSnapshot::FromCounts(7, counts, /*total=*/5);
  EXPECT_EQ(snap.TotalCount(), 5u);  // trusted as-given when gates are off
#endif
}

// ------------------------------------------------- budget metering

// The budget invariant (samples_drawn <= budget at every metering point)
// holds through an exhaustion throw, on both the batched and fused paths.
TEST(CheckTest, BudgetNeverOverdrawnThroughExhaustion) {
  const Distribution d = MakeZipf(64, 1.2);
  const AliasSampler inner(d);
  const BudgetedSampler metered(inner, /*budget=*/100);

  Rng rng(5);
  EXPECT_EQ(metered.DrawMany(100, rng).size(), 100u);
  EXPECT_EQ(metered.samples_drawn(), 100);
  EXPECT_THROW(metered.Draw(rng), BudgetExhaustedError);
  EXPECT_LE(metered.samples_drawn(), metered.budget());

  const BudgetedSampler fused(inner, /*budget=*/50);
  Rng rng2(5);
  EXPECT_THROW(fused.DrawManySharded(51, rng2, 2), BudgetExhaustedError);
  EXPECT_LE(fused.samples_drawn(), fused.budget());
}

}  // namespace
}  // namespace histk
