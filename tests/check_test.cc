// The contract layer (src/util/check.h) under both of its regimes:
//
//   * Always-on HISTK_CHECK / HISTK_CHECK_MSG guard construction-time
//     well-formedness in every build mode — corrupted pmfs and broken
//     tilings must abort, Release included.
//   * HISTK_DCHECK / HISTK_CHECK_INVARIANT are active exactly when
//     HISTK_CHECKS_ENABLED (Debug, or -DHISTK_ENABLE_CHECKS=ON — the
//     `checks` CI job) and compile to nothing otherwise: zero evaluations,
//     zero cost on the hot paths they instrument.
//
// Death tests pin the failure messages so a tripped invariant stays
// attributable from a CI log alone.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distribution.h"
#include "dist/generators.h"
#include "dist/sampler.h"
#include "engine/budget.h"
#include "engine/fault_injection.h"
#include "engine/runtime.h"
#include "histogram/tiling.h"
#include "stream/concurrent_histogram.h"
#include "stream/log_bucket.h"
#include "util/check.h"
#include "util/interval.h"
#include "util/rng.h"
#include "util/status.h"

namespace histk {
namespace {

using CheckDeathTest = ::testing::Test;

// ------------------------------------------------- always-on checks

TEST(CheckDeathTest, UnnormalizedPmfAborts) {
  // Sums to 0.6: FromPmf's normalization contract is always-on.
  EXPECT_DEATH(Distribution::FromPmf({0.3, 0.3}), "pmf");
}

TEST(CheckDeathTest, NegativePmfEntryAborts) {
  EXPECT_DEATH(Distribution::FromPmf({1.5, -0.5}), "pmf");
}

TEST(CheckDeathTest, TilingWithGapAborts) {
  // [0,1] then [3,3] leaves element 2 uncovered.
  EXPECT_DEATH(
      TilingHistogram(4, {Interval(0, 1), Interval(3, 3)}, {0.1, 0.2}),
      "contiguous");
}

TEST(CheckDeathTest, TilingWithOverlapAborts) {
  EXPECT_DEATH(
      TilingHistogram(4, {Interval(0, 2), Interval(2, 3)}, {0.1, 0.2}),
      "contiguous");
}

TEST(CheckDeathTest, TilingShortCoverAborts) {
  EXPECT_DEATH(TilingHistogram(8, {Interval(0, 3)}, {0.125}), "cover");
}

// ------------------------------------------------- gated checks

TEST(CheckTest, GatedMacrosEvaluateExactlyWhenEnabled) {
  int evals = 0;
  HISTK_DCHECK(++evals > 0);
  HISTK_DCHECK_MSG(++evals > 0, "side effect counter");
  HISTK_CHECK_INVARIANT(++evals > 0, "side effect counter");
  // Zero-cost contract: compiled out entirely unless the gate is on.
  EXPECT_EQ(evals, HISTK_CHECKS_ENABLED ? 3 : 0);
}

TEST(CheckDeathTest, InvariantAbortsWithContextWhenEnabled) {
#if HISTK_CHECKS_ENABLED
  EXPECT_DEATH(HISTK_CHECK_INVARIANT(1 + 1 == 3, "arithmetic broke"),
               "arithmetic broke");
#else
  HISTK_CHECK_INVARIANT(1 + 1 == 3, "arithmetic broke");  // must be a no-op
#endif
}

// ------------------------------------------------- telemetry snapshots

// Mantissa-width agreement used to be an always-on abort; snapshots cross
// process boundaries via the wire format, so a mixed-width pair is
// user-reachable and must surface as a typed Status instead (the facade
// boundary audit). These pins keep the conversion honest: wrong pairs are
// still rejected, the process just survives to report it.
TEST(CheckTest, SnapshotMergeWidthMismatchIsTypedStatus) {
  const ConcurrentHistogram a(/*mantissa_bits=*/7);
  const ConcurrentHistogram b(/*mantissa_bits=*/8);
  HistogramSnapshot snap = a.Snapshot();
  const HistogramSnapshot before = snap;
  const Status s = snap.Merge(b.Snapshot());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("mantissa"), std::string::npos);
  EXPECT_EQ(snap, before);  // rejected merges leave the target untouched
}

TEST(CheckTest, SnapshotDeltaDominationViolationIsTypedStatus) {
  ConcurrentHistogram hist(/*mantissa_bits=*/7);
  hist.Record(3, 5);
  const HistogramSnapshot later = hist.Snapshot();
  hist.Record(3, 1);
  const HistogramSnapshot even_later = hist.Snapshot();
  // Arguments swapped: the "earlier" snapshot dominates, which can only
  // mean the pair is not ordered — typed rejection.
  const Result<HistogramSnapshot> delta = later.DeltaSince(even_later);
  ASSERT_FALSE(delta.ok());
  EXPECT_EQ(delta.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(delta.status().message().find("dominate"), std::string::npos);
}

TEST(CheckDeathTest, QuantileOfEmptySnapshotAborts) {
  const ConcurrentHistogram hist;
  EXPECT_DEATH(hist.Snapshot().Quantile(0.5), "empty snapshot");
}

// Count conservation (total == sum of buckets) is the gated invariant:
// FromCounts re-verifies it in checks builds and compiles to nothing
// otherwise (Snapshot() computes the total from the same loads, so the
// hot path never pays for it).
TEST(CheckDeathTest, SnapshotCountConservationIsGated) {
  std::vector<uint64_t> counts(LogBucketKeyCount(7), 0);
  counts[3] = 4;
#if HISTK_CHECKS_ENABLED
  EXPECT_DEATH(HistogramSnapshot::FromCounts(7, counts, /*total=*/5),
               "snapshot total must equal the sum of bucket counts");
#else
  const HistogramSnapshot snap =
      HistogramSnapshot::FromCounts(7, counts, /*total=*/5);
  EXPECT_EQ(snap.TotalCount(), 5u);  // trusted as-given when gates are off
#endif
}

// ------------------------------------------------- session runtime

// Misconfigured runtime components are programmer errors (no user input
// reaches these constructors), so they stay always-on aborts — pinned here
// so the messages remain attributable from a CI log.

TEST(CheckDeathTest, GovernorWithZeroSessionSlotsAborts) {
  EXPECT_DEATH(SessionGovernor(SessionGovernor::Limits{0, -1, 10}),
               "max_sessions");
}

TEST(CheckDeathTest, FaultScheduleWithOverfullRatesAborts) {
  FaultSchedule schedule;
  schedule.transient_rate = 0.7;
  schedule.short_batch_rate = 0.7;
  const Distribution d = MakeZipf(16, 1.2);
  const AliasSampler inner(d);
  EXPECT_DEATH(FaultInjectingSampler(inner, schedule), "fault rates");
}

TEST(CheckDeathTest, RetryBackoffForAttemptZeroAborts) {
  const RetryPolicy policy;
  Rng rng(1);
  // Attempts are 1-based: attempt 0 would mean "backoff before the first
  // try", which no caller can mean.
  EXPECT_DEATH(policy.BackoffMillis(0, rng), "");
}

// ------------------------------------------------- budget metering

// The budget invariant (samples_drawn <= budget at every metering point)
// holds through an exhaustion throw, on both the batched and fused paths.
TEST(CheckTest, BudgetNeverOverdrawnThroughExhaustion) {
  const Distribution d = MakeZipf(64, 1.2);
  const AliasSampler inner(d);
  const BudgetedSampler metered(inner, /*budget=*/100);

  Rng rng(5);
  EXPECT_EQ(metered.DrawMany(100, rng).size(), 100u);
  EXPECT_EQ(metered.samples_drawn(), 100);
  EXPECT_THROW(metered.Draw(rng), BudgetExhaustedError);
  EXPECT_LE(metered.samples_drawn(), metered.budget());

  const BudgetedSampler fused(inner, /*budget=*/50);
  Rng rng2(5);
  EXPECT_THROW(fused.DrawManySharded(51, rng2, 2), BudgetExhaustedError);
  EXPECT_LE(fused.samples_drawn(), fused.budget());
}

}  // namespace
}  // namespace histk
