// Engine task coverage beyond parity: compare/estimate payloads, the
// telemetry block (thinning events, phases), spec validation statuses, and
// the JSON serialization of all of it.
#include "engine/engine.h"

#include <cmath>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "dist/generators.h"
#include "dist/sampler.h"
#include "util/rng.h"

namespace histk {
namespace {

std::string ReportJson(const Report& report) {
  std::ostringstream os;
  WriteReportJson(os, report);
  return os.str();
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

Distribution TruthDist() {
  Rng rng(99);
  return MakeRandomKHistogram(/*n=*/128, /*k=*/5, rng, 10.0).dist;
}

TEST(EngineReportTest, CompareRanksLearnerAgainstBaselines) {
  const Distribution truth = TruthDist();
  const AliasSampler sampler(truth);
  const Engine engine(sampler, truth);

  CompareSpec spec;
  spec.seed = 3;
  spec.k = 5;
  spec.eps = 0.25;
  spec.sample_scale = 0.05;
  const Result<Report> run = engine.Run(spec);
  ASSERT_TRUE(run.ok());
  const Report& report = *run;
  EXPECT_EQ(report.outcome, TaskOutcome::kOk);
  EXPECT_EQ(report.task, "compare");

  double paper_sse = -1.0;
  double voptimal_sse = -1.0;
  for (const CompareRow& row : report.compare) {
    EXPECT_GE(row.sse, 0.0);
    EXPECT_TRUE(std::isfinite(row.sse));
    if (row.method == "paper") {
      paper_sse = row.sse;
      EXPECT_EQ(row.pieces, 5);
      EXPECT_GT(row.samples, 0);
    }
    if (row.method == "v-optimal") {
      voptimal_sse = row.sse;
      EXPECT_EQ(row.samples, 0);  // reads the pmf, draws nothing
    }
  }
  ASSERT_GE(paper_sse, 0.0) << "paper row missing";
  ASSERT_GE(voptimal_sse, 0.0) << "v-optimal row missing (n is under the DP gate)";
  // The exact DP is the optimum over k-piece tilings; the learner's k-piece
  // reduction cannot beat it (up to fp noise).
  EXPECT_LE(voptimal_sse, paper_sse + 1e-12);

  // Baseline draws are metered like everything else.
  ASSERT_EQ(report.telemetry.phases.size(), 3u);
  EXPECT_EQ(report.telemetry.phases[2].phase, "baselines");
  EXPECT_GT(report.telemetry.phases[2].samples, 0);

  const std::string json = ReportJson(report);
  EXPECT_TRUE(Contains(json, "\"task\": \"compare\"")) << json;
  EXPECT_TRUE(Contains(json, "\"method\": \"equi-depth\"")) << json;
}

TEST(EngineReportTest, CompareWithoutTruthIsInvalid) {
  const Distribution truth = TruthDist();
  const AliasSampler sampler(truth);
  const Engine engine(sampler);  // no session truth
  const Result<Report> run = engine.Run(CompareSpec{});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineReportTest, EstimateAnswersQuantilesAndSelectivity) {
  const Distribution truth = TruthDist();
  const AliasSampler sampler(truth);
  const Engine engine(sampler, truth);

  EstimateSpec spec;
  spec.seed = 11;
  spec.k = 5;
  spec.eps = 0.2;
  spec.sample_scale = 0.2;
  spec.quantile_levels = {0.1, 0.5, 0.9};
  spec.ranges = {Interval(0, 31), Interval(32, 95), Interval(0, 127)};
  const Result<Report> run = engine.Run(spec);
  ASSERT_TRUE(run.ok());
  const Report& report = *run;
  ASSERT_TRUE(report.estimate.has_value());

  // Quantiles are monotone in the level.
  const auto& quantiles = report.estimate->quantiles;
  ASSERT_EQ(quantiles.size(), 3u);
  EXPECT_LE(quantiles[0].value, quantiles[1].value);
  EXPECT_LE(quantiles[1].value, quantiles[2].value);

  const auto& selectivity = report.estimate->selectivity;
  ASSERT_EQ(selectivity.size(), 3u);
  for (const auto& sel : selectivity) {
    ASSERT_TRUE(sel.truth.has_value());
    EXPECT_NEAR(sel.estimate, *sel.truth, 0.2);
  }
  // The full-domain range carries (nearly) all the mass on both sides.
  EXPECT_NEAR(selectivity[2].estimate, 1.0, 0.05);
  EXPECT_NEAR(*selectivity[2].truth, 1.0, 1e-9);

  const std::string json = ReportJson(report);
  EXPECT_TRUE(Contains(json, "\"estimate\": {\"quantiles\":")) << json;
}

TEST(EngineReportTest, EstimateWithoutTruthOmitsTruthColumn) {
  const Distribution truth = TruthDist();
  const AliasSampler sampler(truth);
  const Engine engine(sampler);

  EstimateSpec spec;
  spec.k = 5;
  spec.eps = 0.2;
  spec.sample_scale = 0.1;
  spec.ranges = {Interval(0, 63)};
  const Report report = *engine.Run(spec);
  ASSERT_TRUE(report.estimate.has_value());
  EXPECT_FALSE(report.estimate->selectivity[0].truth.has_value());
  EXPECT_TRUE(Contains(ReportJson(report), "\"truth\": null"));
}

TEST(EngineReportTest, ThinningEventIsSurfacedInTelemetry) {
  // Zipf has full support, so the endpoint list is large; a tiny
  // max_candidates forces the (previously silent) thinning.
  const Distribution d = MakeZipf(512, 1.1);
  const AliasSampler sampler(d);
  const Engine engine(sampler);

  LearnSpec spec;
  spec.seed = 21;
  spec.options.k = 4;
  spec.options.eps = 0.25;
  spec.options.sample_scale = 0.05;
  spec.options.max_candidates = 55;  // endpoint limit d(d+1)/2 <= 55 -> d = 10
  const Report report = *engine.Run(spec);
  ASSERT_EQ(report.outcome, TaskOutcome::kOk);
  EXPECT_GT(report.telemetry.endpoints_before_thinning, 10);
  EXPECT_LE(report.telemetry.endpoints_after_thinning, 10);
  EXPECT_LT(report.telemetry.endpoints_after_thinning,
            report.telemetry.endpoints_before_thinning);

  // Without the cap, the counts match (no thinning).
  spec.options.max_candidates = 0;
  const Report uncapped = *engine.Run(spec);
  EXPECT_EQ(uncapped.telemetry.endpoints_before_thinning,
            uncapped.telemetry.endpoints_after_thinning);
}

TEST(EngineReportTest, InvalidSpecsReturnStatusesNotAborts) {
  const Distribution truth = TruthDist();
  const AliasSampler sampler(truth);
  const Engine engine(sampler, truth);

  LearnSpec bad_k;
  bad_k.options.k = 0;
  EXPECT_EQ(engine.Run(bad_k).status().code(), StatusCode::kInvalidArgument);

  LearnSpec bad_eps;
  bad_eps.options.eps = 1.5;
  EXPECT_EQ(engine.Run(bad_eps).status().code(), StatusCode::kInvalidArgument);

  LearnSpec bad_threads;
  bad_threads.draw_threads = -2;
  EXPECT_EQ(engine.Run(bad_threads).status().code(), StatusCode::kInvalidArgument);

  TestSpec bad_scale;
  bad_scale.config.sample_scale = 0.0;
  EXPECT_EQ(engine.Run(bad_scale).status().code(), StatusCode::kInvalidArgument);

  EstimateSpec bad_level;
  bad_level.quantile_levels = {1.5};
  EXPECT_EQ(engine.Run(bad_level).status().code(), StatusCode::kInvalidArgument);

  EstimateSpec bad_range;
  bad_range.ranges = {Interval(100, 500)};  // beyond n = 128
  EXPECT_EQ(engine.Run(bad_range).status().code(), StatusCode::kInvalidArgument);

  // In-range knobs whose derived sample counts overflow to inf / past
  // int64 must be rejected here, not abort inside the formula calculators.
  TestSpec tiny_eps;
  tiny_eps.config.eps = 1e-80;  // eps^-5 -> inf
  EXPECT_EQ(engine.Run(tiny_eps).status().code(), StatusCode::kInvalidArgument);

  TestSpec tiny_eps_l2 = tiny_eps;
  tiny_eps_l2.config.norm = Norm::kL2;
  EXPECT_EQ(engine.Run(tiny_eps_l2).status().code(), StatusCode::kInvalidArgument);

  LearnSpec huge_scale;
  huge_scale.options.sample_scale = 1e308;  // l -> inf
  EXPECT_EQ(engine.Run(huge_scale).status().code(), StatusCode::kInvalidArgument);

  LearnSpec big_count;
  big_count.options.eps = 1e-8;  // finite but far past int64 samples
  EXPECT_EQ(engine.Run(big_count).status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineReportTest, CompareBudgetExhaustionKeepsTelemetryOnly) {
  const Distribution truth = TruthDist();
  const AliasSampler sampler(truth);
  const Engine engine(sampler, truth);

  CompareSpec spec;
  spec.seed = 3;
  spec.k = 5;
  spec.eps = 0.25;
  spec.sample_scale = 0.05;
  const Report full = *engine.Run(spec);
  ASSERT_EQ(full.outcome, TaskOutcome::kOk);

  // Enough budget to learn, not enough for the baselines sample: the rows
  // pushed before exhaustion must not leak into the report.
  CompareSpec capped = spec;
  capped.budget = full.learn->total_samples + 1;
  const Report partial = *engine.Run(capped);
  EXPECT_EQ(partial.outcome, TaskOutcome::kBudgetExhausted);
  EXPECT_TRUE(partial.compare.empty());
  EXPECT_FALSE(partial.learn.has_value());
  EXPECT_LE(partial.telemetry.samples_drawn, capped.budget);
}

TEST(EngineReportTest, JsonCarriesOutcomeAndPhases) {
  const Distribution truth = TruthDist();
  const AliasSampler sampler(truth);
  const Engine engine(sampler);

  LearnSpec spec;
  spec.options.k = 4;
  spec.options.eps = 0.25;
  spec.options.sample_scale = 0.05;
  spec.budget = 10;  // exhausts immediately
  const std::string json = ReportJson(*engine.Run(spec));
  EXPECT_TRUE(Contains(json, "\"histk_report\": 1")) << json;
  EXPECT_TRUE(Contains(json, "\"outcome\": \"budget-exhausted\"")) << json;
  EXPECT_TRUE(Contains(json, "\"budget\": 10")) << json;
  EXPECT_TRUE(Contains(json, "\"phase\": \"learn-main\"")) << json;
  EXPECT_FALSE(Contains(json, "\"learn\": {")) << json;
}

}  // namespace
}  // namespace histk
