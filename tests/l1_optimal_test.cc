#include "baseline/l1_optimal.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "baseline/far_instances.h"
#include "baseline/voptimal_dp.h"
#include "core/lower_bound.h"
#include "dist/generators.h"
#include "histogram/ops.h"
#include "util/rng.h"

namespace histk {
namespace {

// Exhaustive optimum over boundaries AND values (values = medians are
// optimal per piece, so enumerate boundaries only).
double BruteForceL1Opt(const Distribution& p, int64_t k) {
  const int64_t n = p.n();
  double best = std::numeric_limits<double>::infinity();
  std::vector<int64_t> cuts;
  auto piece_cost = [&](int64_t lo, int64_t hi) {
    std::vector<double> vals;
    for (int64_t i = lo; i <= hi; ++i) vals.push_back(p.p(i));
    std::sort(vals.begin(), vals.end());
    const double med = vals[(vals.size() - 1) / 2];
    double c = 0.0;
    for (double v : vals) c += std::fabs(v - med);
    return c;
  };
  auto rec = [&](auto&& self, int64_t start, int64_t remaining) -> void {
    if (remaining == 0) {
      double total = 0.0;
      int64_t lo = 0;
      std::vector<int64_t> ends = cuts;
      ends.push_back(n - 1);
      for (int64_t end : ends) {
        total += piece_cost(lo, end);
        lo = end + 1;
      }
      best = std::min(best, total);
      return;
    }
    for (int64_t c = start; c <= n - 1 - remaining; ++c) {
      cuts.push_back(c);
      self(self, c + 1, remaining - 1);
      cuts.pop_back();
    }
  };
  rec(rec, 0, std::min(k, n) - 1);
  return best;
}

TEST(L1OptimalTest, MatchesBruteForceOnSmallInstances) {
  Rng rng(1201);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<double> w(9);
    for (auto& x : w) x = rng.NextDouble();
    const Distribution p = Distribution::FromWeights(w);
    for (int64_t k = 1; k <= 4; ++k) {
      EXPECT_NEAR(L1OptimalError(p, k), BruteForceL1Opt(p, k), 1e-12)
          << "trial " << trial << " k " << k;
    }
  }
}

TEST(L1OptimalTest, ZeroOnExactHistograms) {
  Rng rng(1202);
  const HistogramSpec spec = MakeRandomKHistogram(60, 5, rng);
  EXPECT_NEAR(L1OptimalError(spec.dist, 5), 0.0, 1e-12);
}

TEST(L1OptimalTest, MonotoneInK) {
  Rng rng(1203);
  const Distribution p = MakeNoisy(MakeZipf(48, 1.0), 0.5, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (int64_t k = 1; k <= 10; ++k) {
    const double e = L1OptimalError(p, k);
    EXPECT_LE(e, prev + 1e-12);
    prev = e;
  }
}

TEST(L1OptimalTest, HistogramAchievesItsError) {
  Rng rng(1204);
  const Distribution p = MakeNoisy(Distribution::Uniform(40), 0.8, rng);
  const L1OptimalResult res = L1OptimalHistogram(p, 4);
  EXPECT_NEAR(res.histogram.L1ErrorTo(p), res.error, 1e-10);
  EXPECT_LE(res.histogram.k(), 4);
}

TEST(L1OptimalTest, L1OptimalBeatsL2OptimalInL1) {
  // The L2-optimal histogram is a valid competitor in L1; the L1 DP must
  // be at least as good (means vs medians differ under outliers).
  Rng rng(1205);
  const Distribution p = MakeNoisy(MakeZipf(64, 1.4), 0.4, rng);
  for (int64_t k : {2, 4, 8}) {
    const double l1_opt = L1OptimalError(p, k);
    const double via_l2 = VOptimalHistogram(p, k).histogram.L1ErrorTo(p);
    EXPECT_LE(l1_opt, via_l2 + 1e-12) << "k=" << k;
  }
}

TEST(L1OptimalTest, CertifiesZigzagAnalyticBound) {
  // The analytic zigzag certificate must lower-bound the exact distance.
  const FarInstance inst = MakeL1FarZigzag(64, 4, 0.25);
  const double exact = L1OptimalError(inst.dist, 4);
  EXPECT_GE(exact, inst.certified_distance - 1e-9);
  // The analytic bound is tight for the zigzag (equals the DP value).
  EXPECT_NEAR(inst.certified_distance, exact, 1e-9);
}

TEST(L1OptimalTest, LowerBoundNoInstanceIsThetaOneOverKFar) {
  // Theorem 5's NO instance: exact L1 distance from the k-histogram class
  // is Theta(1/k) — the quantitative heart of the lower bound.
  Rng rng(1206);
  for (int64_t k : {4, 8}) {
    const auto pair = MakeLowerBoundPair(128, k, rng);
    const double d = L1OptimalError(pair.no, k);
    const double heavy_w = 1.0 / std::ceil(static_cast<double>(k) / 2.0);
    EXPECT_GT(d, heavy_w / 4.0) << "k=" << k;   // within a small constant
    EXPECT_LT(d, 2.0 * heavy_w) << "k=" << k;
  }
}

}  // namespace
}  // namespace histk
