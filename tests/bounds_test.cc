#include "stats/bounds.h"

#include <cmath>

#include <gtest/gtest.h>

namespace histk {
namespace {

TEST(BoundsTest, GreedyParamsMatchFormulas) {
  const int64_t n = 1024, k = 4;
  const double eps = 0.1;
  const GreedyParams gp = ComputeGreedyParams(n, k, eps);
  const double xi = eps / (k * std::log(1.0 / eps));
  EXPECT_NEAR(gp.xi, xi, 1e-12);
  EXPECT_EQ(gp.l, static_cast<int64_t>(
                      std::ceil(std::log(12.0 * n * n) / (2 * xi * xi))));
  EXPECT_EQ(gp.r, static_cast<int64_t>(std::ceil(std::log(6.0 * n * n))));
  EXPECT_EQ(gp.m, static_cast<int64_t>(std::ceil(24.0 / (xi * xi))));
  EXPECT_EQ(gp.iterations, static_cast<int64_t>(std::ceil(k * std::log(1.0 / eps))));
  EXPECT_EQ(gp.TotalSamples(), gp.l + gp.r * gp.m);
}

TEST(BoundsTest, GreedyScaleShrinksSamplesOnly) {
  const GreedyParams full = ComputeGreedyParams(512, 8, 0.2);
  const GreedyParams half = ComputeGreedyParams(512, 8, 0.2, 0.5);
  EXPECT_NEAR(static_cast<double>(half.l) / static_cast<double>(full.l), 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(half.m) / static_cast<double>(full.m), 0.5, 0.01);
  EXPECT_EQ(half.r, full.r);
  EXPECT_EQ(half.iterations, full.iterations);
}

TEST(BoundsTest, GreedySamplesGrowLogarithmicallyInN) {
  const GreedyParams a = ComputeGreedyParams(1 << 10, 4, 0.1);
  const GreedyParams b = ComputeGreedyParams(1 << 20, 4, 0.1);
  // l ~ ln(12 n^2): exact predicted ratio.
  const double predicted = std::log(12.0 * std::pow(2.0, 40)) /
                           std::log(12.0 * std::pow(2.0, 20));
  EXPECT_NEAR(static_cast<double>(b.l) / static_cast<double>(a.l), predicted, 0.01);
}

TEST(BoundsTest, GreedySamplesGrowQuadraticallyInKOverEps) {
  const GreedyParams base = ComputeGreedyParams(1024, 2, 0.2);
  const GreedyParams kx2 = ComputeGreedyParams(1024, 4, 0.2);
  // xi halves -> l roughly quadruples.
  EXPECT_NEAR(static_cast<double>(kx2.l) / static_cast<double>(base.l), 4.0, 0.2);
}

TEST(BoundsTest, L2TesterParamsMatchFormulas) {
  const int64_t n = 4096;
  const double eps = 0.25;
  const TesterParams tp = ComputeL2TesterParams(n, eps);
  EXPECT_EQ(tp.r, static_cast<int64_t>(std::ceil(16.0 * std::log(6.0 * n * n))));
  EXPECT_EQ(tp.m, static_cast<int64_t>(
                      std::ceil(64.0 * std::log(static_cast<double>(n)) /
                                std::pow(eps, 4.0))));
}

TEST(BoundsTest, L1TesterParamsMatchFormulas) {
  const int64_t n = 4096, k = 4;
  const double eps = 0.25;
  const TesterParams tp = ComputeL1TesterParams(n, k, eps);
  EXPECT_EQ(tp.m,
            static_cast<int64_t>(std::ceil(
                8192.0 * std::sqrt(static_cast<double>(k * n)) / std::pow(eps, 5.0))));
}

TEST(BoundsTest, L1TesterScalesWithSqrtKn) {
  const TesterParams a = ComputeL1TesterParams(1 << 10, 2, 0.3);
  const TesterParams b = ComputeL1TesterParams(1 << 14, 2, 0.3);
  // n grew 16x -> m grows 4x.
  EXPECT_NEAR(static_cast<double>(b.m) / static_cast<double>(a.m), 4.0, 0.05);
  const TesterParams c = ComputeL1TesterParams(1 << 10, 8, 0.3);
  EXPECT_NEAR(static_cast<double>(c.m) / static_cast<double>(a.m), 2.0, 0.05);
}

TEST(BoundsTest, L2TesterIndependentOfK) {
  // Theorem 3's sample count does not involve k at all.
  EXPECT_EQ(ComputeL2TesterParams(2048, 0.2).m, ComputeL2TesterParams(2048, 0.2).m);
}

TEST(BoundsTest, LowerBoundBudget) {
  EXPECT_DOUBLE_EQ(LowerBoundBudget(100, 4), 20.0);
  EXPECT_DOUBLE_EQ(LowerBoundBudget(1, 1), 1.0);
}

TEST(BoundsDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(ComputeGreedyParams(1024, 4, 0.0), "eps");
  EXPECT_DEATH(ComputeGreedyParams(1024, 4, 1.0), "eps");
  EXPECT_DEATH(ComputeGreedyParams(1024, 4, 0.5, -1.0), "scale");
  EXPECT_DEATH(ComputeL1TesterParams(1024, 0, 0.5), "k >= 1");
}

}  // namespace
}  // namespace histk
