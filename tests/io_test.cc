#include "dist/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "dist/generators.h"

namespace histk {
namespace {

TEST(IoTest, DistributionRoundTripsExactly) {
  Rng rng(701);
  const Distribution d = MakeNoisy(MakeZipf(40, 1.3), 0.3, rng);
  std::stringstream ss;
  WriteDistribution(ss, d);
  const auto back = ReadDistribution(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->n(), d.n());
  for (int64_t i = 0; i < d.n(); ++i) EXPECT_DOUBLE_EQ(back->p(i), d.p(i));
}

TEST(IoTest, HistogramRoundTripsExactly) {
  const TilingHistogram h(10, {{0, 2}, {3, 7}, {8, 9}}, {0.05, 0.11, 0.15});
  std::stringstream ss;
  WriteTilingHistogram(ss, h);
  const auto back = ReadTilingHistogram(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->k(), 3);
  for (int64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(back->Value(i), h.Value(i));
}

TEST(IoTest, RejectsWrongMagic) {
  std::stringstream ss("other-format v1\nn 3\n0.5 0.25 0.25\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsWrongVersion) {
  std::stringstream ss("histk-distribution v9\nn 2\n0.5 0.5\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsNonNormalizedPmf) {
  std::stringstream ss("histk-distribution v1\nn 2\n0.5 0.2\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsNegativeEntries) {
  std::stringstream ss("histk-distribution v1\nn 2\n1.5 -0.5\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsTruncatedStream) {
  std::stringstream ss("histk-distribution v1\nn 4\n0.25 0.25\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsHistogramWithBadEnds) {
  // Non-increasing ends.
  std::stringstream a("histk-tiling-histogram v1\nn 10 k 2\n5 0.1\n5 0.1\n");
  EXPECT_FALSE(ReadTilingHistogram(a).has_value());
  // Last end is not n-1.
  std::stringstream b("histk-tiling-histogram v1\nn 10 k 2\n3 0.1\n8 0.1\n");
  EXPECT_FALSE(ReadTilingHistogram(b).has_value());
  // k > n.
  std::stringstream c("histk-tiling-histogram v1\nn 2 k 3\n0 0.1\n1 0.1\n1 0.1\n");
  EXPECT_FALSE(ReadTilingHistogram(c).has_value());
}

TEST(IoTest, BucketDistributionRoundTripsWithoutDensifying) {
  const Distribution d = Distribution::FromBucketWeights(
      int64_t{1} << 30, {999, (int64_t{1} << 29) - 1, (int64_t{1} << 30) - 1},
      {2.0, 1.0, 3.0});
  std::stringstream ss;
  WriteBucketDistribution(ss, d);
  const auto back = ReadBucketDistribution(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->is_bucketed());
  EXPECT_EQ(back->n(), d.n());
  EXPECT_EQ(back->num_buckets(), d.num_buckets());
  for (int64_t i : {int64_t{0}, int64_t{999}, int64_t{1000}, int64_t{1} << 29,
                    (int64_t{1} << 30) - 1}) {
    EXPECT_NEAR(back->p(i), d.p(i), 1e-18) << i;
  }
  EXPECT_NEAR(back->Weight(Interval(0, 999)), d.Weight(Interval(0, 999)), 1e-12);
}

TEST(IoTest, BucketDistributionWriterCompressesDensePmfs) {
  const Distribution d = Distribution::FromPmf({0.125, 0.125, 0.125, 0.125, 0.5});
  std::stringstream ss;
  WriteBucketDistribution(ss, d);
  const auto back = ReadBucketDistribution(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_buckets(), 2);  // the four equal entries merged
  for (int64_t i = 0; i < 5; ++i) EXPECT_NEAR(back->p(i), d.p(i), 1e-15);
}

TEST(IoTest, BucketDistributionRejectsNonUnitMass) {
  std::stringstream ss("histk-tiling-histogram v1\nn 10 k 2\n4 0.01\n9 0.01\n");
  EXPECT_FALSE(ReadBucketDistribution(ss).has_value());
}

TEST(IoTest, BucketDistributionRejectsNegativeDensity) {
  std::stringstream ss("histk-tiling-histogram v1\nn 4 k 2\n1 -0.1\n3 0.6\n");
  EXPECT_FALSE(ReadBucketDistribution(ss).has_value());
}

TEST(IoTest, HandlesTinyProbabilitiesPrecisely) {
  std::vector<double> w(8, 1.0);
  w[3] = 1e-15;
  const Distribution d = Distribution::FromWeights(w);
  std::stringstream ss;
  WriteDistribution(ss, d);
  const auto back = ReadDistribution(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->p(3), d.p(3));
}

// ---------------------------------------------------------- Parse* statuses

bool MessageContains(const Status& s, const std::string& needle) {
  return s.message().find(needle) != std::string::npos;
}

TEST(IoParseTest, AgreesWithReadOnGoodInput) {
  Rng rng(702);
  const Distribution d = MakeNoisy(MakeZipf(16, 0.8), 0.2, rng);
  std::stringstream ss;
  WriteDistribution(ss, d);
  const Result<Distribution> parsed = ParseDistribution(ss);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  for (int64_t i = 0; i < d.n(); ++i) EXPECT_DOUBLE_EQ(parsed->p(i), d.p(i));
}

TEST(IoParseTest, NamesTheLineOfABadPmfEntry) {
  // Line 3 holds the entries; the third one is not a number.
  std::stringstream ss("histk-distribution v1\nn 3\n0.5 0.25 oops\n");
  const Result<Distribution> parsed = ParseDistribution(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(MessageContains(parsed.status(), "line 3"))
      << parsed.status().ToString();
  EXPECT_TRUE(MessageContains(parsed.status(), "oops")) << parsed.status().ToString();
}

TEST(IoParseTest, NamesTheLineOfTruncation) {
  std::stringstream ss("histk-distribution v1\nn 4\n0.5 0.5\n");
  const Result<Distribution> parsed = ParseDistribution(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(MessageContains(parsed.status(), "end of input"))
      << parsed.status().ToString();
}

TEST(IoParseTest, NamesTheLineOfANonAscendingEnd) {
  // Piece ends 5 then 3: the offending token is on line 4.
  std::stringstream ss("histk-tiling-histogram v1\nn 10 k 3\n5 0.1\n3 0.1\n9 0.0\n");
  const Result<TilingHistogram> parsed = ParseTilingHistogram(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(MessageContains(parsed.status(), "line 4"))
      << parsed.status().ToString();
  EXPECT_TRUE(MessageContains(parsed.status(), "ascending"))
      << parsed.status().ToString();
}

TEST(IoParseTest, NamesTheLineOfANonFinitePieceValue) {
  // inf sits on line 3; the error must not point at the end of the body.
  std::stringstream ss("histk-tiling-histogram v1\nn 10 k 3\n4 inf\n7 0.1\n9 0.0\n");
  const Result<TilingHistogram> parsed = ParseTilingHistogram(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(MessageContains(parsed.status(), "line 3"))
      << parsed.status().ToString();
  EXPECT_TRUE(MessageContains(parsed.status(), "finite"))
      << parsed.status().ToString();
}

TEST(IoParseTest, BucketDistributionDiagnosesBadMass) {
  std::stringstream ss("histk-tiling-histogram v1\nn 10 k 2\n4 0.01\n9 0.01\n");
  const Result<Distribution> parsed = ParseBucketDistribution(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(MessageContains(parsed.status(), "mass"))
      << parsed.status().ToString();
}

TEST(IoParseTest, DatasetNamesTheLineOfABadItem) {
  std::stringstream ss("0\n1\n2\nxyz\n3\n");
  const Result<std::vector<int64_t>> parsed = ParseDataset(ss);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
  EXPECT_TRUE(MessageContains(parsed.status(), "line 4"))
      << parsed.status().ToString();
}

TEST(IoParseTest, DatasetRejectsOutOfDomainWithLine) {
  std::stringstream ss("0\n1\n9\n");
  const Result<std::vector<int64_t>> parsed = ParseDataset(ss, /*n=*/5);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(MessageContains(parsed.status(), "line 3"))
      << parsed.status().ToString();

  std::stringstream ok_ss("0\n1\n4\n");
  const Result<std::vector<int64_t>> parsed_ok = ParseDataset(ok_ss, /*n=*/5);
  ASSERT_TRUE(parsed_ok.ok());
  EXPECT_EQ(parsed_ok->size(), 3u);
}

}  // namespace
}  // namespace histk
