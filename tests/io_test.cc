#include "dist/io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "dist/generators.h"

namespace histk {
namespace {

TEST(IoTest, DistributionRoundTripsExactly) {
  Rng rng(701);
  const Distribution d = MakeNoisy(MakeZipf(40, 1.3), 0.3, rng);
  std::stringstream ss;
  WriteDistribution(ss, d);
  const auto back = ReadDistribution(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->n(), d.n());
  for (int64_t i = 0; i < d.n(); ++i) EXPECT_DOUBLE_EQ(back->p(i), d.p(i));
}

TEST(IoTest, HistogramRoundTripsExactly) {
  const TilingHistogram h(10, {{0, 2}, {3, 7}, {8, 9}}, {0.05, 0.11, 0.15});
  std::stringstream ss;
  WriteTilingHistogram(ss, h);
  const auto back = ReadTilingHistogram(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->k(), 3);
  for (int64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(back->Value(i), h.Value(i));
}

TEST(IoTest, RejectsWrongMagic) {
  std::stringstream ss("other-format v1\nn 3\n0.5 0.25 0.25\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsWrongVersion) {
  std::stringstream ss("histk-distribution v9\nn 2\n0.5 0.5\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsNonNormalizedPmf) {
  std::stringstream ss("histk-distribution v1\nn 2\n0.5 0.2\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsNegativeEntries) {
  std::stringstream ss("histk-distribution v1\nn 2\n1.5 -0.5\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsTruncatedStream) {
  std::stringstream ss("histk-distribution v1\nn 4\n0.25 0.25\n");
  EXPECT_FALSE(ReadDistribution(ss).has_value());
}

TEST(IoTest, RejectsHistogramWithBadEnds) {
  // Non-increasing ends.
  std::stringstream a("histk-tiling-histogram v1\nn 10 k 2\n5 0.1\n5 0.1\n");
  EXPECT_FALSE(ReadTilingHistogram(a).has_value());
  // Last end is not n-1.
  std::stringstream b("histk-tiling-histogram v1\nn 10 k 2\n3 0.1\n8 0.1\n");
  EXPECT_FALSE(ReadTilingHistogram(b).has_value());
  // k > n.
  std::stringstream c("histk-tiling-histogram v1\nn 2 k 3\n0 0.1\n1 0.1\n1 0.1\n");
  EXPECT_FALSE(ReadTilingHistogram(c).has_value());
}

TEST(IoTest, BucketDistributionRoundTripsWithoutDensifying) {
  const Distribution d = Distribution::FromBucketWeights(
      int64_t{1} << 30, {999, (int64_t{1} << 29) - 1, (int64_t{1} << 30) - 1},
      {2.0, 1.0, 3.0});
  std::stringstream ss;
  WriteBucketDistribution(ss, d);
  const auto back = ReadBucketDistribution(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_TRUE(back->is_bucketed());
  EXPECT_EQ(back->n(), d.n());
  EXPECT_EQ(back->num_buckets(), d.num_buckets());
  for (int64_t i : {int64_t{0}, int64_t{999}, int64_t{1000}, int64_t{1} << 29,
                    (int64_t{1} << 30) - 1}) {
    EXPECT_NEAR(back->p(i), d.p(i), 1e-18) << i;
  }
  EXPECT_NEAR(back->Weight(Interval(0, 999)), d.Weight(Interval(0, 999)), 1e-12);
}

TEST(IoTest, BucketDistributionWriterCompressesDensePmfs) {
  const Distribution d = Distribution::FromPmf({0.125, 0.125, 0.125, 0.125, 0.5});
  std::stringstream ss;
  WriteBucketDistribution(ss, d);
  const auto back = ReadBucketDistribution(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->num_buckets(), 2);  // the four equal entries merged
  for (int64_t i = 0; i < 5; ++i) EXPECT_NEAR(back->p(i), d.p(i), 1e-15);
}

TEST(IoTest, BucketDistributionRejectsNonUnitMass) {
  std::stringstream ss("histk-tiling-histogram v1\nn 10 k 2\n4 0.01\n9 0.01\n");
  EXPECT_FALSE(ReadBucketDistribution(ss).has_value());
}

TEST(IoTest, BucketDistributionRejectsNegativeDensity) {
  std::stringstream ss("histk-tiling-histogram v1\nn 4 k 2\n1 -0.1\n3 0.6\n");
  EXPECT_FALSE(ReadBucketDistribution(ss).has_value());
}

TEST(IoTest, HandlesTinyProbabilitiesPrecisely) {
  std::vector<double> w(8, 1.0);
  w[3] = 1e-15;
  const Distribution d = Distribution::FromWeights(w);
  std::stringstream ss;
  WriteDistribution(ss, d);
  const auto back = ReadDistribution(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->p(3), d.p(3));
}

}  // namespace
}  // namespace histk
