#include "baseline/voptimal_dp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dist/generators.h"
#include "dist/sampler.h"
#include "histogram/ops.h"
#include "util/rng.h"

namespace histk {
namespace {

// Exhaustive optimum by enumerating all boundary placements (tiny n only).
double BruteForceOptSse(const Distribution& p, int64_t k) {
  const int64_t n = p.n();
  double best = std::numeric_limits<double>::infinity();
  std::vector<int64_t> cuts;
  auto rec = [&](auto&& self, int64_t start, int64_t remaining) -> void {
    if (remaining == 0) {
      std::vector<int64_t> ends = cuts;
      ends.push_back(n - 1);
      best = std::min(best, BoundariesSse(p, ends));
      return;
    }
    for (int64_t c = start; c <= n - 1 - remaining; ++c) {
      cuts.push_back(c);
      self(self, c + 1, remaining - 1);
      cuts.pop_back();
    }
  };
  rec(rec, 0, std::min(k, n) - 1);
  return best;
}

TEST(VOptimalTest, MatchesBruteForceOnSmallInstances) {
  Rng rng(91);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> w(10);
    for (auto& x : w) x = rng.NextDouble();
    const Distribution p = Distribution::FromWeights(w);
    for (int64_t k = 1; k <= 5; ++k) {
      const double brute = BruteForceOptSse(p, k);
      EXPECT_NEAR(VOptimalHistogram(p, k).sse, brute, 1e-12)
          << "trial " << trial << " k " << k;
    }
  }
}

class VOptimalApproxTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(VOptimalApproxTest, ApproxWithinCertifiedFactor) {
  const int64_t seed = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  const int64_t n = 60 + static_cast<int64_t>(rng.UniformInt(60));
  std::vector<double> w(static_cast<size_t>(n));
  for (auto& x : w) x = rng.NextDouble() < 0.2 ? 0.0 : rng.NextDouble();
  if (*std::max_element(w.begin(), w.end()) == 0.0) w[0] = 1.0;
  const Distribution p = Distribution::FromWeights(w);
  const double delta = 0.05;
  for (int64_t k : {1, 2, 3, 7, 15}) {
    const auto exact = VOptimalHistogram(p, k);
    const auto approx = VOptimalHistogramApprox(p, k, delta);
    // Certified band: OPT <= approx <= (1+delta)^(k-1) OPT (+ tiny floor slop).
    EXPECT_GE(approx.sse, exact.sse - 1e-10) << "k=" << k;
    const double factor = std::pow(1.0 + delta, static_cast<double>(k - 1));
    EXPECT_LE(approx.sse, factor * exact.sse + 1e-9) << "k=" << k;
    // Reconstructions must achieve their claimed error.
    EXPECT_NEAR(exact.histogram.L2SquaredErrorTo(p), exact.sse, 1e-10);
    EXPECT_NEAR(approx.histogram.L2SquaredErrorTo(p), approx.sse, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VOptimalApproxTest, ::testing::Range<int64_t>(1, 13));

TEST(VOptimalTest, ZeroErrorOnExactKHistograms) {
  Rng rng(92);
  for (int64_t k : {1, 2, 4, 8}) {
    const HistogramSpec spec = MakeRandomKHistogram(100, k, rng);
    const auto res = VOptimalHistogram(spec.dist, k);
    EXPECT_NEAR(res.sse, 0.0, 1e-12) << "k=" << k;
  }
}

TEST(VOptimalTest, ErrorMonotoneNonIncreasingInK) {
  Rng rng(93);
  const Distribution p = MakeNoisy(MakeZipf(80, 1.0), 0.5, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (int64_t k = 1; k <= 20; ++k) {
    const double sse = VOptimalSse(p, k);
    EXPECT_LE(sse, prev + 1e-12) << "k=" << k;
    prev = sse;
  }
}

TEST(VOptimalTest, KAtLeastNGivesZero) {
  Rng rng(94);
  std::vector<double> w(12);
  for (auto& x : w) x = 0.01 + rng.NextDouble();
  const Distribution p = Distribution::FromWeights(w);
  EXPECT_NEAR(VOptimalSse(p, 12), 0.0, 1e-15);
  EXPECT_NEAR(VOptimalSse(p, 500), 0.0, 1e-15);  // k clamped to n
}

TEST(VOptimalTest, HistogramHasAtMostKPieces) {
  Rng rng(95);
  const Distribution p = MakeNoisy(Distribution::Uniform(64), 0.9, rng);
  for (int64_t k : {1, 3, 9}) {
    EXPECT_LE(VOptimalHistogram(p, k).histogram.k(), k);
  }
}

TEST(VOptimalTest, UniformNeedsOnePiece) {
  const auto res = VOptimalHistogram(Distribution::Uniform(32), 4);
  EXPECT_NEAR(res.sse, 0.0, 1e-15);
}

TEST(VOptimalTest, StaircaseRecoversTrueBoundaries) {
  const HistogramSpec spec = MakeStaircase(60, 4);
  const auto res = VOptimalHistogram(spec.dist, 4);
  EXPECT_NEAR(res.sse, 0.0, 1e-14);
  EXPECT_EQ(res.histogram.Condensed(1e-12).k(), 4);
}

TEST(VOptimalTest, FromSamplesApproachesTrueOptimum) {
  Rng rng(96);
  const HistogramSpec spec = MakeRandomKHistogram(64, 4, rng, 10.0);
  const AliasSampler sampler(spec.dist);
  const auto samples = sampler.DrawMany(200000, rng);
  const auto res = VOptimalFromSamples(64, 4, samples);
  // The empirical DP histogram should be close to optimal for the truth.
  EXPECT_LT(res.histogram.L2SquaredErrorTo(spec.dist), 1e-4);
}

TEST(VOptimalTest, ApproxHandlesFlatAndSpikyExtremes) {
  // All-zero error curve (uniform) and extreme spikes both stress banding.
  EXPECT_NEAR(VOptimalHistogramApprox(Distribution::Uniform(64), 5, 0.1).sse, 0.0,
              1e-12);
  const Distribution spikes = MakeSpikes(128, 9);
  const double exact = VOptimalSse(spikes, 4);
  const double approx = VOptimalHistogramApprox(spikes, 4, 0.1).sse;
  EXPECT_GE(approx, exact - 1e-12);
  EXPECT_LE(approx, std::pow(1.1, 3.0) * exact + 1e-9);
}

}  // namespace
}  // namespace histk
