// The serving core, driven in-process: cache hit/miss/eviction, governor
// backpressure as wire-level 503s, queue overflow, concurrent submits,
// the stats conservation invariant, filesystem-ref policy, and the
// fingerprint-collision content guard.
#include "serve/server.h"

#include <sys/stat.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/json.h"
#include "serve/dataset_store.h"
#include "stream/concurrent_histogram.h"

namespace histk {
namespace {

using api::JsonValue;
using api::ParseJson;
using serve::HistkdServer;
using serve::ServeOptions;

constexpr const char* kItems = "[0, 0, 1, 1, 2, 3, 3, 3, 7, 7]";

std::string LearnLine(const std::string& id, const std::string& extra = "") {
  return "{\"id\": \"" + id + "\", \"kind\": \"learn\", \"k\": 4, "
         "\"eps\": 0.2" + extra + ", \"dataset\": {\"items\": " + kItems +
         "}}";
}

std::string EstimateLine(const std::string& id) {
  return "{\"id\": \"" + id + "\", \"kind\": \"estimate\", \"k\": 4, "
         "\"eps\": 0.2, \"quantiles\": [0.5], \"ranges\": [[0, 3]], "
         "\"dataset\": {\"items\": " + kItems + "}}";
}

JsonValue MustParse(const std::string& line) {
  Result<JsonValue> parsed = ParseJson(line.substr(0, line.find('\n')));
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
  return parsed.ok() ? std::move(*parsed) : JsonValue::Null();
}

int64_t GetI64(const JsonValue& v, const std::string& key) {
  const JsonValue* field = v.Find(key);
  EXPECT_NE(field, nullptr) << key;
  if (field == nullptr) return -1;
  Result<int64_t> out = field->AsI64();
  EXPECT_TRUE(out.ok()) << key;
  return out.ok() ? *out : -1;
}

std::string GetString(const JsonValue& v, const std::string& key) {
  const JsonValue* field = v.Find(key);
  EXPECT_NE(field, nullptr) << key;
  return field != nullptr && field->is_string() ? field->AsString()
                                                : std::string();
}

TEST(HistkdTest, LearnMissThenEstimateHitDrawsNothing) {
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);

  const JsonValue learn = MustParse(server.HandleLine(LearnLine("r1")));
  EXPECT_EQ(GetString(learn, "status"), "ok");
  EXPECT_EQ(GetString(learn, "cache"), "miss");
  const std::string fingerprint = GetString(learn, "fingerprint");
  ASSERT_FALSE(fingerprint.empty());
  const int64_t cold_draws =
      GetI64(*learn.Find("report")->Find("telemetry"), "samples_drawn");
  EXPECT_GT(cold_draws, 0);

  // 100+ repeat estimates: every one a cache hit, zero oracle draws, no
  // governor slot — the learn-once/serve-forever contract.
  for (int i = 0; i < 120; ++i) {
    const JsonValue hit =
        MustParse(server.HandleLine(EstimateLine("q" + std::to_string(i))));
    ASSERT_EQ(GetString(hit, "status"), "ok");
    ASSERT_EQ(GetString(hit, "cache"), "hit");
    ASSERT_EQ(GetString(hit, "fingerprint"), fingerprint);
    const JsonValue* report = hit.Find("report");
    ASSERT_NE(report, nullptr);
    ASSERT_EQ(GetI64(*report->Find("telemetry"), "samples_drawn"), 0);
    ASSERT_EQ(report->Find("estimate")->Find("quantiles")->AsArray().size(),
              1u);
  }
  EXPECT_EQ(server.cache_counters().hits, 120);
  EXPECT_EQ(server.cache_counters().misses, 1);
  EXPECT_EQ(server.governor().in_flight(), 0);
}

TEST(HistkdTest, RepeatLearnHitIsByteIdenticalModuloServeMs) {
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);

  auto strip_serve_ms = [](std::string line) {
    const std::string needle = "\"serve_ms\": ";
    const size_t at = line.find(needle);
    EXPECT_NE(at, std::string::npos);
    size_t end = at + needle.size();
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    line.erase(at + needle.size(), end - at - needle.size());
    return line;
  };
  const std::string cold = server.HandleLine(LearnLine("r1"));
  const std::string warm = server.HandleLine(LearnLine("r1"));
  // Identical apart from serve time and the cache column: the cached reply
  // replays the original session's report verbatim (wall_ms included — it
  // documents what the learn cost when it actually ran).
  std::string cold_norm = strip_serve_ms(cold);
  std::string warm_norm = strip_serve_ms(warm);
  const size_t cold_cache = cold_norm.find("\"cache\": \"miss\"");
  ASSERT_NE(cold_cache, std::string::npos);
  cold_norm.replace(cold_cache, 15, "\"cache\": \"hit\"");
  EXPECT_EQ(cold_norm, warm_norm);
}

TEST(HistkdTest, CacheKeyFragmentsOnSeedAndEvictsLru) {
  ServeOptions options;
  options.workers = 1;
  options.cache_entries = 1;
  HistkdServer server(options);

  EXPECT_EQ(GetString(MustParse(server.HandleLine(LearnLine("a"))), "cache"),
            "miss");
  EXPECT_EQ(GetString(MustParse(server.HandleLine(LearnLine("b"))), "cache"),
            "hit");
  // A different seed is a different session: miss, insert, evict the first.
  EXPECT_EQ(GetString(MustParse(server.HandleLine(
                LearnLine("c", ", \"seed\": 2"))), "cache"),
            "miss");
  EXPECT_EQ(GetString(MustParse(server.HandleLine(LearnLine("d"))), "cache"),
            "miss");
  const auto counters = server.cache_counters();
  EXPECT_EQ(counters.entries, 1);
  EXPECT_GE(counters.evictions, 2);
}

TEST(HistkdTest, GovernorRejectionIsTypedWithRetryAfter) {
  ServeOptions options;
  options.workers = 1;
  options.governor.max_sessions = 1;
  options.governor.retry_after_ms = 25;
  HistkdServer server(options);

  // Hold the one session slot so the next admission must reject —
  // deterministic saturation without racing a slow request.
  SessionGovernor& governor = const_cast<SessionGovernor&>(server.governor());
  Result<SessionGovernor::Permit> held = governor.Admit(1);
  ASSERT_TRUE(held.ok());

  const JsonValue rejected = MustParse(server.HandleLine(LearnLine("r1")));
  EXPECT_EQ(GetString(rejected, "status"), "unavailable");
  EXPECT_TRUE(rejected.Find("degraded")->AsBool());
  EXPECT_EQ(GetI64(rejected, "retry_after_ms"), 25);
  EXPECT_NE(GetString(rejected, "error").find("session admission rejected"),
            std::string::npos);
  EXPECT_EQ(rejected.Find("report"), nullptr);
  EXPECT_GT(server.governor().rejected(), 0);

  // Cache hits bypass the governor: pre-populate via a second server? No —
  // with zero slots nothing can populate, so just confirm stats counted it.
  const JsonValue stats = MustParse(server.HandleLine(
      "{\"id\": \"s\", \"kind\": \"stats\"}"));
  EXPECT_EQ(GetI64(*stats.Find("stats")->Find("requests"), "rejected"), 1);
}

TEST(HistkdTest, CacheHitsBypassTheGovernor) {
  // One session slot, held elsewhere: hits must still serve.
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);
  MustParse(server.HandleLine(LearnLine("warm")));  // populate the cache

  SessionGovernor& governor =
      const_cast<SessionGovernor&>(server.governor());
  std::vector<SessionGovernor::Permit> held;
  for (int i = 0; i < ServeOptions().governor.max_sessions; ++i) {
    Result<SessionGovernor::Permit> permit = governor.Admit(1);
    ASSERT_TRUE(permit.ok());
    held.push_back(std::move(*permit));
  }
  // Governor is saturated: a cold session would 503, but the hit serves.
  const JsonValue hit = MustParse(server.HandleLine(EstimateLine("q")));
  EXPECT_EQ(GetString(hit, "status"), "ok");
  EXPECT_EQ(GetString(hit, "cache"), "hit");
  const JsonValue miss = MustParse(server.HandleLine(
      LearnLine("cold", ", \"seed\": 3")));
  EXPECT_EQ(GetString(miss, "status"), "unavailable");
}

TEST(HistkdTest, QueueOverflowRejectsBeforeAnyWork) {
  ServeOptions options;
  options.workers = 1;
  options.queue_limit = 0;  // every submit overflows, deterministically
  options.governor.retry_after_ms = 7;
  HistkdServer server(options);

  std::string response;
  server.Submit(EstimateLine("r1"),
                [&response](std::string line) { response = std::move(line); });
  const JsonValue rejected = MustParse(response);
  EXPECT_EQ(GetString(rejected, "id"), "r1");  // parsed for the echo only
  EXPECT_EQ(GetString(rejected, "status"), "unavailable");
  EXPECT_EQ(GetI64(rejected, "retry_after_ms"), 7);
  EXPECT_NE(GetString(rejected, "error").find("request queue full"),
            std::string::npos);
  EXPECT_EQ(server.cache_counters().misses, 0);  // no work was attempted
}

TEST(HistkdTest, ConcurrentSubmitsAllComplete) {
  ServeOptions options;
  options.workers = 4;
  HistkdServer server(options);

  constexpr int kRequests = 32;
  std::mutex mu;
  std::vector<std::string> responses;
  for (int i = 0; i < kRequests; ++i) {
    const std::string line =
        i % 2 == 0 ? LearnLine("c" + std::to_string(i)) :
                     EstimateLine("c" + std::to_string(i));
    server.Submit(line, [&mu, &responses](std::string response) {
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    });
  }
  server.Drain();
  ASSERT_EQ(responses.size(), static_cast<size_t>(kRequests));
  for (const std::string& line : responses) {
    const JsonValue v = MustParse(line);
    const std::string status = GetString(v, "status");
    // Under contention a session either runs or is admission-rejected with
    // a typed retry hint; nothing else is acceptable.
    if (status == "unavailable") {
      EXPECT_GE(GetI64(v, "retry_after_ms"), 0);
    } else {
      EXPECT_EQ(status, "ok") << line;
    }
  }
  // All 32 requests share one dataset entry and one synopsis key.
  EXPECT_EQ(server.dataset_counters().entries, 1);
  EXPECT_LE(server.cache_counters().entries, 1);
}

TEST(HistkdTest, StatsCountersConserve) {
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);

  MustParse(server.HandleLine(LearnLine("r1")));
  MustParse(server.HandleLine(EstimateLine("r2")));
  MustParse(server.HandleLine(EstimateLine("r3")));
  MustParse(server.HandleLine("this is not json"));
  MustParse(server.HandleLine("{\"id\": \"r4\", \"kind\": \"learn\", "
                              "\"bugdet\": 1}"));  // unknown field
  const JsonValue stats = MustParse(
      server.HandleLine("{\"id\": \"s\", \"kind\": \"stats\"}"));
  const JsonValue* payload = stats.Find("stats");
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(GetI64(*payload, "histkd_stats"), 1);

  const JsonValue* requests = payload->Find("requests");
  ASSERT_NE(requests, nullptr);
  const int64_t total = GetI64(*requests, "total");
  const int64_t no_kind = GetI64(*requests, "no_kind_errors");
  EXPECT_EQ(total, 5);
  EXPECT_EQ(no_kind, 2);

  // Conservation: every completed request is either kind-attributed in the
  // per-kind latency histograms or counted as a no-kind parse failure.
  const JsonValue* kinds = payload->Find("kinds");
  ASSERT_NE(kinds, nullptr);
  int64_t kind_total = 0;
  for (const auto& member : kinds->AsObject()) {
    kind_total += GetI64(member.second, "count");
  }
  EXPECT_EQ(kind_total + no_kind, total);

  const JsonValue* cache = payload->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(GetI64(*cache, "misses"), 1);
  EXPECT_EQ(GetI64(*cache, "hits"), 2);
}

TEST(HistkdTest, PathDatasetIsContentAddressedWithInline) {
  const std::string path = testing::TempDir() + "/histkd_items.txt";
  {
    std::ofstream f(path);
    f << "0 0 1 1 2\n3 3 3 7 7\n";
  }
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);

  const JsonValue from_path = MustParse(server.HandleLine(
      "{\"id\": \"p\", \"kind\": \"learn\", \"k\": 4, \"eps\": 0.2, "
      "\"dataset\": {\"path\": \"" + path + "\"}}"));
  ASSERT_EQ(GetString(from_path, "status"), "ok");
  const JsonValue from_items = MustParse(server.HandleLine(LearnLine("i")));
  // Same contents, same fingerprint, same store entry — and the second
  // learn is a cache hit because the canonical keys agree too.
  EXPECT_EQ(GetString(from_path, "fingerprint"),
            GetString(from_items, "fingerprint"));
  EXPECT_EQ(GetString(from_items, "cache"), "hit");
  EXPECT_EQ(server.dataset_counters().entries, 1);

  // And a fingerprint ref resolves without resending the data.
  const JsonValue by_fp = MustParse(server.HandleLine(
      "{\"id\": \"f\", \"kind\": \"estimate\", \"k\": 4, \"eps\": 0.2, "
      "\"quantiles\": [0.5], \"dataset\": {\"fingerprint\": \"" +
      GetString(from_path, "fingerprint") + "\"}}"));
  EXPECT_EQ(GetString(by_fp, "status"), "ok");
  EXPECT_EQ(GetString(by_fp, "cache"), "hit");
}

TEST(HistkdTest, FsRefsCanBeDisabled) {
  const std::string path = testing::TempDir() + "/histkd_denied.txt";
  {
    std::ofstream f(path);
    f << "0 1 2 3\n";
  }
  ServeOptions options;
  options.workers = 1;
  options.fs_refs.allow = false;  // the socket frontend's default posture
  HistkdServer server(options);

  const JsonValue denied = MustParse(server.HandleLine(
      "{\"id\": \"p\", \"kind\": \"learn\", \"k\": 2, "
      "\"dataset\": {\"path\": \"" + path + "\"}}"));
  EXPECT_EQ(GetString(denied, "status"), "invalid-argument");
  EXPECT_NE(GetString(denied, "error").find("filesystem dataset refs are "
                                            "disabled"),
            std::string::npos);
  // Inline items (and, transitively, fingerprints) still serve.
  EXPECT_EQ(GetString(MustParse(server.HandleLine(LearnLine("i"))), "status"),
            "ok");
}

TEST(HistkdTest, FsRefsAreJailedToTheDataRoot) {
  const std::string root = testing::TempDir() + "/histkd_root";
  mkdir(root.c_str(), 0755);
  const std::string inside = root + "/in.txt";
  const std::string outside = testing::TempDir() + "/histkd_outside.txt";
  for (const std::string& p : {inside, outside}) {
    std::ofstream f(p);
    f << "0 0 1 1 2 3 3 3 7 7\n";
  }
  ServeOptions options;
  options.workers = 1;
  options.fs_refs.root = root;
  HistkdServer server(options);

  auto learn_path = [&server](const std::string& id, const std::string& p) {
    return MustParse(server.HandleLine(
        "{\"id\": \"" + id + "\", \"kind\": \"learn\", \"k\": 4, "
        "\"eps\": 0.2, \"dataset\": {\"path\": \"" + p + "\"}}"));
  };
  EXPECT_EQ(GetString(learn_path("in", inside), "status"), "ok");

  const JsonValue out = learn_path("out", outside);
  EXPECT_EQ(GetString(out, "status"), "invalid-argument");
  EXPECT_NE(GetString(out, "error").find("outside the configured data root"),
            std::string::npos);

  // ".." cannot escape: the path canonicalizes before the prefix check.
  const JsonValue traversal =
      learn_path("dotdot", root + "/../histkd_outside.txt");
  EXPECT_EQ(GetString(traversal, "status"), "invalid-argument");
  EXPECT_NE(GetString(traversal, "error")
                .find("outside the configured data root"),
            std::string::npos);

  // Probing a nonexistent out-of-root path reads exactly like a missing
  // in-root file — no existence oracle.
  const JsonValue probe = learn_path("probe", "/nonexistent/secret.txt");
  EXPECT_EQ(GetString(probe, "status"), "invalid-argument");
  EXPECT_NE(GetString(probe, "error").find("cannot open dataset file"),
            std::string::npos);
}

TEST(HistkdTest, FingerprintReuseVerifiesContent) {
  // The collision guards themselves: same content matches, any content
  // or domain difference does not — the store turns a mismatch on a live
  // fingerprint into a typed error instead of aliasing datasets.
  const std::vector<int64_t> items = {0, 0, 1, 1, 2, 3, 3, 3, 7, 7};
  Result<std::shared_ptr<serve::ServedDataset>> ds =
      serve::ServedDataset::FromItems(8, items, AliasKernel::kReplay);
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE((*ds)->MatchesItems(8, items));
  EXPECT_FALSE((*ds)->MatchesItems(16, items));  // same bytes, other domain
  std::vector<int64_t> tweaked = items;
  tweaked.back() = 6;
  EXPECT_FALSE((*ds)->MatchesItems(8, tweaked));

  ConcurrentHistogram hist(7);
  hist.Record(3, 5);
  hist.Record(200, 2);
  std::ostringstream wire_os;
  WriteSnapshot(wire_os, hist.Snapshot());
  const std::string wire = wire_os.str();
  Result<std::shared_ptr<serve::ServedDataset>> sketch =
      serve::ServedDataset::FromSketchWire(wire, AliasKernel::kReplay);
  ASSERT_TRUE(sketch.ok()) << sketch.status().ToString();
  EXPECT_TRUE((*sketch)->MatchesSketchWire(wire));
  EXPECT_FALSE((*sketch)->MatchesSketchWire(wire + " "));
  // Cross-kind probes never match: an item entry is not a sketch entry.
  EXPECT_FALSE((*ds)->MatchesSketchWire(wire));
  EXPECT_FALSE((*sketch)->MatchesItems(8, items));
}

TEST(HistkdTest, UnknownFingerprintIsActionableError) {
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);
  const JsonValue v = MustParse(server.HandleLine(
      "{\"id\": \"r\", \"kind\": \"learn\", "
      "\"dataset\": {\"fingerprint\": \"00000000deadbeef\"}}"));
  EXPECT_EQ(GetString(v, "status"), "invalid-argument");
  EXPECT_NE(GetString(v, "error").find("unknown dataset fingerprint"),
            std::string::npos);
}

TEST(HistkdTest, ClosenessResolvesBothOraclesAndChecksDomains) {
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);

  const JsonValue close = MustParse(server.HandleLine(
      "{\"id\": \"c1\", \"kind\": \"closeness\", \"k\": 2, \"eps\": 0.4, "
      "\"n\": 8, \"dataset\": {\"items\": " + std::string(kItems) + "}, "
      "\"other\": {\"items\": " + kItems + "}}"));
  EXPECT_EQ(GetString(close, "status"), "ok");
  ASSERT_NE(close.Find("report"), nullptr);
  EXPECT_TRUE(close.Find("report")->Find("closeness")->Find("accepted")
                  ->AsBool());

  const JsonValue mismatch = MustParse(server.HandleLine(
      "{\"id\": \"c2\", \"kind\": \"closeness\", \"k\": 2, \"eps\": 0.4, "
      "\"dataset\": {\"items\": [0, 1, 2, 3]}, "
      "\"other\": {\"items\": [0, 1]}}"));
  EXPECT_EQ(GetString(mismatch, "status"), "invalid-argument");
  EXPECT_NE(GetString(mismatch, "error").find("share a domain"),
            std::string::npos);
}

TEST(HistkdTest, ShutdownRequestFlagsTheFrontends) {
  ServeOptions options;
  options.workers = 1;
  HistkdServer server(options);
  EXPECT_FALSE(server.shutdown_requested());
  const JsonValue v = MustParse(server.HandleLine(
      "{\"id\": \"bye\", \"kind\": \"shutdown\"}"));
  EXPECT_EQ(GetString(v, "status"), "ok");
  EXPECT_TRUE(server.shutdown_requested());
}

}  // namespace
}  // namespace histk
