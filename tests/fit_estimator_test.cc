#include "core/fit_estimator.h"

#include <gtest/gtest.h>

#include "baseline/voptimal_dp.h"
#include "dist/generators.h"
#include "histogram/ops.h"

namespace histk {
namespace {

TEST(FitEstimatorTest, NearZeroForPerfectFit) {
  Rng gen(1401);
  const HistogramSpec spec = MakeRandomKHistogram(64, 4, gen, 20.0);
  // H = the true histogram itself.
  const TilingHistogram h = ProjectToBoundaries(spec.dist, spec.right_ends);
  const AliasSampler sampler(spec.dist);
  Rng rng(1402);
  const FitEstimate est = EstimateL2SquaredFit(sampler, h, 200000, rng);
  EXPECT_NEAR(est.l2_squared, 0.0, 5e-4);
}

TEST(FitEstimatorTest, TracksTrueDistance) {
  Rng gen(1403);
  const Distribution p = MakeGaussianMixture(64, {{0.4, 0.1, 1.0}}, 0.2);
  for (int64_t k : {1, 2, 4, 8}) {
    const TilingHistogram h = VOptimalHistogram(p, k).histogram;
    const double truth = h.L2SquaredErrorTo(p);
    const AliasSampler sampler(p);
    Rng rng(1404);
    const FitEstimate est = EstimateL2SquaredFit(sampler, h, 400000, rng);
    EXPECT_NEAR(est.l2_squared, truth, 5e-4) << "k=" << k;
  }
}

TEST(FitEstimatorTest, ComponentsAreConsistent) {
  const Distribution p = MakeZipf(32, 1.0);
  const TilingHistogram h = TilingHistogram::Flat(32, 1.0 / 32.0);
  const AliasSampler sampler(p);
  Rng rng(1405);
  const FitEstimate est = EstimateL2SquaredFit(sampler, h, 300000, rng);
  EXPECT_NEAR(est.p_norm_sq, p.L2NormSquared(), 1e-3);
  // <p, uniform-histogram> = 1/n exactly.
  EXPECT_NEAR(est.cross_term, 1.0 / 32.0, 1e-3);
  EXPECT_NEAR(est.h_norm_sq, 1.0 / 32.0, 1e-12);
  EXPECT_EQ(est.samples_used, 5 * (300000 / 5));
}

TEST(FitEstimatorTest, DetectsStaleHistogramAfterDrift) {
  // The monitoring use case: H fit yesterday's data; p drifted.
  Rng gen(1406);
  const HistogramSpec old_spec = MakeRandomKHistogram(64, 4, gen, 10.0);
  const TilingHistogram h = ProjectToBoundaries(old_spec.dist, old_spec.right_ends);
  const Distribution drifted = MakeGaussianMixture(64, {{0.2, 0.05, 1.0}}, 0.3);
  const double truth = h.L2SquaredErrorTo(drifted);
  const AliasSampler sampler(drifted);
  Rng rng(1407);
  const FitEstimate est = EstimateL2SquaredFit(sampler, h, 300000, rng);
  EXPECT_NEAR(est.l2_squared, truth, 0.1 * truth + 1e-4);
  EXPECT_GT(est.l2_squared, 5.0 * 5e-4);  // clearly flagged as a bad fit
}

TEST(FitEstimatorDeathTest, NeedsEnoughSamples) {
  const AliasSampler sampler(Distribution::Uniform(8));
  Rng rng(1408);
  const TilingHistogram h = TilingHistogram::Flat(8, 0.125);
  EXPECT_DEATH(EstimateL2SquaredFit(sampler, h, 4, rng, 5), "m >= 2");
}

}  // namespace
}  // namespace histk
