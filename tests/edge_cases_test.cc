// Edge cases and failure injection across the public API: degenerate
// domains, extreme parameters, and malformed inputs.
#include <cmath>

#include <gtest/gtest.h>

#include "core/histk.h"
#include "util/math_util.h"

namespace histk {
namespace {

// -------------------------------------------------------------- domains

TEST(EdgeCaseTest, SingleElementDomain) {
  const Distribution d = Distribution::Uniform(1);
  EXPECT_DOUBLE_EQ(d.p(0), 1.0);
  EXPECT_TRUE(d.IsFlat(Interval::Full(1)));
  EXPECT_EQ(MinimalPieceCount(d), 1);
  EXPECT_NEAR(VOptimalSse(d, 1), 0.0, 1e-15);
  const TilingHistogram h = TilingHistogram::Flat(1, 1.0);
  EXPECT_NEAR(h.L2SquaredErrorTo(d), 0.0, 1e-15);
}

TEST(EdgeCaseTest, TwoElementLearning) {
  const Distribution d = Distribution::FromPmf({0.8, 0.2});
  const AliasSampler sampler(d);
  Rng rng(1101);
  LearnOptions opt;
  opt.k = 2;
  opt.eps = 0.3;
  const LearnResult res = LearnHistogram(sampler, opt, rng);
  EXPECT_LT(res.tiling.L2SquaredErrorTo(d), 0.01);
}

TEST(EdgeCaseTest, TesterOnTwoElements) {
  const Distribution d = Distribution::FromPmf({0.7, 0.3});
  const AliasSampler sampler(d);
  Rng rng(1102);
  TestConfig cfg;
  cfg.k = 2;  // any 2-element distribution is a tiling 2-histogram
  cfg.eps = 0.4;
  cfg.norm = Norm::kL2;
  cfg.r_override = 5;
  EXPECT_TRUE(TestKHistogram(sampler, cfg, rng).accepted);
}

// -------------------------------------------------------------- parameters

TEST(EdgeCaseTest, KEqualsNEverythingIsAHistogram) {
  Rng rng(1103);
  const Distribution d = MakeNoisy(Distribution::Uniform(16), 0.9, rng);
  EXPECT_TRUE(IsTilingKHistogram(d, 16));
  EXPECT_NEAR(VOptimalSse(d, 16), 0.0, 1e-15);
  // Tester with k = n accepts anything.
  const AliasSampler sampler(d);
  TestConfig cfg;
  cfg.k = 16;
  cfg.eps = 0.3;
  cfg.norm = Norm::kL2;
  cfg.r_override = 5;
  EXPECT_TRUE(TestKHistogram(sampler, cfg, rng).accepted);
}

TEST(EdgeCaseTest, EpsCloseToOne) {
  // ln(1/eps) < 1 regime: iteration count floors at 1, xi capped at eps.
  const GreedyParams gp = ComputeGreedyParams(64, 4, 0.9);
  EXPECT_GE(gp.iterations, 1);
  EXPECT_LE(gp.xi, 0.9);
  EXPECT_GE(gp.l, 2);
  const AliasSampler sampler(Distribution::Uniform(64));
  Rng rng(1104);
  LearnOptions opt;
  opt.k = 4;
  opt.eps = 0.9;
  const LearnResult res = LearnHistogram(sampler, opt, rng);  // must not crash
  EXPECT_GE(res.tiling.k(), 1);
}

TEST(EdgeCaseTest, TinyEpsStillComputesParams) {
  const GreedyParams gp = ComputeGreedyParams(1 << 20, 32, 0.01);
  EXPECT_GT(gp.l, 0);
  EXPECT_GT(gp.m, 0);
  // No overflow: total fits comfortably in int64.
  EXPECT_GT(gp.TotalSamples(), 0);
}

// -------------------------------------------------------------- degenerate mass

TEST(EdgeCaseTest, LearnerOnAllMassOneElementWithZeroTail) {
  // Point mass at the last element: boundary case for interval clipping.
  const Distribution d = Distribution::PointMass(32, 31);
  const AliasSampler sampler(d);
  Rng rng(1105);
  LearnOptions opt;
  opt.k = 2;
  opt.eps = 0.2;
  const LearnResult res = LearnHistogram(sampler, opt, rng);
  EXPECT_GT(res.tiling.Value(31), 0.5);
}

TEST(EdgeCaseTest, TesterOnZeroWeightRegions) {
  // Mass only in the middle third; zero elsewhere. Still a 3-histogram.
  std::vector<double> w(96, 0.0);
  for (int i = 32; i < 64; ++i) w[static_cast<size_t>(i)] = 1.0;
  const Distribution d = Distribution::FromWeights(w);
  const AliasSampler sampler(d);
  Rng rng(1106);
  TestConfig cfg;
  cfg.k = 3;
  cfg.eps = 0.3;
  cfg.norm = Norm::kL2;
  cfg.r_override = 7;
  int accepts = 0;
  for (int t = 0; t < 5; ++t) accepts += TestKHistogram(sampler, cfg, rng).accepted;
  EXPECT_GE(accepts, 4);
}

TEST(EdgeCaseTest, FlatnessOnIntervalWithNoSamples) {
  const AliasSampler sampler(Distribution::PointMass(64, 0));
  Rng rng(1107);
  const SampleSetGroup group = SampleSetGroup::Draw(sampler, 5, 200, rng);
  // Far-away interval: zero samples -> light-accepted in both norms.
  EXPECT_TRUE(TestFlatnessL2(group, Interval(32, 63), 0.3).accept);
  EXPECT_TRUE(TestFlatnessL1(group, Interval(32, 63), 0.3, 2).accept);
}

// -------------------------------------------------------------- misuse

TEST(EdgeCaseDeathTest, LearnerRejectsBadOptions) {
  const AliasSampler sampler(Distribution::Uniform(8));
  Rng rng(1108);
  LearnOptions opt;
  opt.k = 0;
  EXPECT_DEATH(LearnHistogram(sampler, opt, rng), "k >= 1");
  opt.k = 2;
  opt.eps = 1.5;
  EXPECT_DEATH(LearnHistogram(sampler, opt, rng), "eps");
}

TEST(EdgeCaseDeathTest, SumSquaresEstimateNeedsTwoSamples) {
  const SampleSet s = SampleSet::FromDraws(8, {3});
  EXPECT_DEATH(s.SumSquaresEstimate(Interval::Full(8)), "2 samples");
}

TEST(EdgeCaseDeathTest, DistributionBoundsChecked) {
  const Distribution d = Distribution::Uniform(4);
  EXPECT_DEATH(Distribution::PointMass(4, 4), "at < n");
  EXPECT_DEATH(d.IntervalMean(Interval::Empty()), "empty");
}

TEST(EdgeCaseTest, IntervalClippingNeverCrashes) {
  const Distribution d = Distribution::Uniform(8);
  EXPECT_DOUBLE_EQ(d.Weight(Interval(-100, 100)), 1.0);
  EXPECT_DOUBLE_EQ(d.SumSquares(Interval(7, 700)), d.p(7) * d.p(7));
  EXPECT_DOUBLE_EQ(d.IntervalSse(Interval(100, 200)), 0.0);
  const SampleSet s = SampleSet::FromDraws(8, {0, 1, 2});
  EXPECT_EQ(s.Count(Interval(-5, 50)), 3);
}

// -------------------------------------------------------------- numeric extremes

TEST(EdgeCaseTest, VerySkewedValuesStayFinite) {
  std::vector<double> w(32, 1e-12);
  w[5] = 1.0;
  const Distribution d = Distribution::FromWeights(w);
  EXPECT_TRUE(std::isfinite(d.L2NormSquared()));
  EXPECT_TRUE(std::isfinite(VOptimalSse(d, 4)));
  const auto res = VOptimalHistogram(d, 4);
  for (double v : res.histogram.values()) EXPECT_TRUE(std::isfinite(v));
}

TEST(EdgeCaseTest, LargeDomainSparseBackend) {
  // Beyond the dense limit: sparse SampleSet path end to end.
  const int64_t n = SampleSet::kDenseDomainLimit * 2;
  std::vector<int64_t> draws{0, 5, n - 1, n - 1, n / 2, 5, 5};
  const SampleSet s = SampleSet::FromDraws(n, draws);
  EXPECT_EQ(s.Count(Interval(0, n / 2)), 5);
  EXPECT_EQ(s.Collisions(Interval::Full(n)), PairCount(3) + PairCount(2));
  EXPECT_EQ(s.distinct_values().size(), 4u);
}

}  // namespace
}  // namespace histk
