#include "dist/empirical.h"

#include <gtest/gtest.h>

#include "dist/sampler.h"
#include "util/rng.h"

namespace histk {
namespace {

TEST(EmpiricalTest, CountOccurrencesExact) {
  const auto counts = CountOccurrences(5, {0, 0, 3, 3, 3, 4});
  EXPECT_EQ(counts, (std::vector<int64_t>{2, 0, 0, 3, 1}));
}

TEST(EmpiricalTest, EmpiricalDistributionFrequencies) {
  const Distribution d = EmpiricalDistribution(4, {0, 1, 1, 2, 2, 2, 2, 3});
  EXPECT_DOUBLE_EQ(d.p(0), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(d.p(1), 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(d.p(2), 4.0 / 8.0);
  EXPECT_DOUBLE_EQ(d.p(3), 1.0 / 8.0);
}

TEST(EmpiricalTest, ConvergesToTruthInL1) {
  const Distribution truth = Distribution::FromWeights({5, 1, 1, 1, 2, 10});
  const AliasSampler sampler(truth);
  Rng rng(81);
  const Distribution small = EmpiricalDistribution(6, sampler.DrawMany(100, rng));
  const Distribution large = EmpiricalDistribution(6, sampler.DrawMany(100000, rng));
  EXPECT_LT(truth.L1DistanceTo(large), truth.L1DistanceTo(small));
  EXPECT_LT(truth.L1DistanceTo(large), 0.02);
}

TEST(EmpiricalDeathTest, RejectsOutOfDomainAndEmpty) {
  EXPECT_DEATH(CountOccurrences(3, {0, 3}), "out of domain");
  EXPECT_DEATH(EmpiricalDistribution(3, {}), "needs samples");
}

}  // namespace
}  // namespace histk
