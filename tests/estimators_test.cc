#include "stats/estimators.h"

#include <gtest/gtest.h>

#include "dist/generators.h"

namespace histk {
namespace {

GreedyEstimator MakeEstimator(const Distribution& d, int64_t l, int64_t r, int64_t m,
                              uint64_t seed) {
  const AliasSampler sampler(d);
  Rng rng(seed);
  SampleSet main = SampleSet::Draw(sampler, l, rng);
  SampleSetGroup group = SampleSetGroup::Draw(sampler, r, m, rng);
  return GreedyEstimator(std::move(main), std::move(group));
}

TEST(EstimatorsTest, WeightEstimateTracksTrueWeight) {
  const Distribution d = MakeZipf(64, 1.0);
  const GreedyEstimator est = MakeEstimator(d, 100000, 5, 1000, 101);
  for (const Interval I : {Interval(0, 3), Interval(10, 40), Interval::Full(64)}) {
    EXPECT_NEAR(est.WeightEstimate(I), d.Weight(I), 0.01) << I.ToString();
  }
}

TEST(EstimatorsTest, SumSquaresEstimateTracksTruth) {
  const Distribution d = MakeZipf(64, 1.2);
  const GreedyEstimator est = MakeEstimator(d, 1000, 9, 50000, 102);
  for (const Interval I : {Interval(0, 3), Interval(5, 30), Interval::Full(64)}) {
    EXPECT_NEAR(est.SumSquaresEstimate(I), d.SumSquares(I), 0.01) << I.ToString();
  }
}

TEST(EstimatorsTest, PieceCostApproximatesIntervalSse) {
  Rng gen_rng(103);
  const HistogramSpec spec = MakeRandomKHistogram(48, 4, gen_rng, 20.0);
  const Distribution noisy = MakeNoisy(spec.dist, 0.5, gen_rng);
  const GreedyEstimator est = MakeEstimator(noisy, 200000, 9, 100000, 104);
  for (const Interval I :
       {Interval(0, 10), Interval(12, 30), Interval(31, 47), Interval::Full(48)}) {
    EXPECT_NEAR(est.PieceCost(I), noisy.IntervalSse(I), 0.01) << I.ToString();
  }
}

TEST(EstimatorsTest, PieceCostZeroForEmptyInterval) {
  const GreedyEstimator est = MakeEstimator(Distribution::Uniform(16), 100, 3, 100, 105);
  EXPECT_DOUBLE_EQ(est.PieceCost(Interval::Empty()), 0.0);
}

TEST(EstimatorsTest, DrawRespectsParams) {
  const AliasSampler sampler(Distribution::Uniform(32));
  Rng rng(106);
  GreedyParams params;
  params.l = 500;
  params.r = 7;
  params.m = 300;
  params.iterations = 3;
  const GreedyEstimator est = GreedyEstimator::Draw(sampler, params, rng);
  EXPECT_EQ(est.main().m(), 500);
  EXPECT_EQ(est.group().r(), 7);
  EXPECT_EQ(est.group().set(0).m(), 300);
  EXPECT_EQ(est.TotalSamples(), 500 + 7 * 300);
}

TEST(EstimatorsDeathTest, DomainMismatchAborts) {
  const AliasSampler s16(Distribution::Uniform(16));
  const AliasSampler s32(Distribution::Uniform(32));
  Rng rng(107);
  SampleSet main = SampleSet::Draw(s16, 100, rng);
  SampleSetGroup group = SampleSetGroup::Draw(s32, 3, 100, rng);
  EXPECT_DEATH(GreedyEstimator(std::move(main), std::move(group)), "mismatch");
}

}  // namespace
}  // namespace histk
