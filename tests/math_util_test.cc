#include "util/math_util.h"

#include <gtest/gtest.h>

namespace histk {
namespace {

TEST(MathUtilTest, PairCountSmallValues) {
  EXPECT_EQ(PairCount(0), 0u);
  EXPECT_EQ(PairCount(1), 0u);
  EXPECT_EQ(PairCount(2), 1u);
  EXPECT_EQ(PairCount(3), 3u);
  EXPECT_EQ(PairCount(10), 45u);
}

TEST(MathUtilTest, PairCountLargeNoOverflow) {
  // 2^32 choose 2 fits in uint64.
  const uint64_t m = 1ull << 32;
  EXPECT_EQ(PairCount(m), (m / 2) * (m - 1));
}

TEST(MathUtilTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  // Lower median for even sizes.
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({5.0, 5.0, 5.0, 5.0}), 5.0);
}

TEST(MathUtilTest, MedianRobustToOutliers) {
  EXPECT_DOUBLE_EQ(Median({1.0, 2.0, 3.0, 4.0, 1e9}), 3.0);
}

TEST(MathUtilTest, MeanAndStdDev) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(v), 5.0);
  EXPECT_NEAR(StdDev(v), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(MathUtilTest, StableSumCompensates) {
  // Summing 1 + many tiny values loses precision naively.
  std::vector<double> v{1.0};
  for (int i = 0; i < 10000000; ++i) v.push_back(1e-16);
  EXPECT_NEAR(StableSum(v), 1.0 + 1e-9, 1e-12);
}

TEST(MathUtilTest, WilsonScoreContainsPointEstimate) {
  const auto ci = WilsonScore(80, 100);
  EXPECT_LT(ci.lower, 0.8);
  EXPECT_GT(ci.upper, 0.8);
  EXPECT_GT(ci.lower, 0.7);
  EXPECT_LT(ci.upper, 0.9);
}

TEST(MathUtilTest, WilsonScoreEdges) {
  const auto zero = WilsonScore(0, 50);
  EXPECT_DOUBLE_EQ(zero.lower, 0.0);
  EXPECT_GT(zero.upper, 0.0);
  const auto all = WilsonScore(50, 50);
  EXPECT_DOUBLE_EQ(all.upper, 1.0);
  EXPECT_LT(all.lower, 1.0);
}

TEST(MathUtilTest, CeilDivAndCeilToInt64) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilToInt64(2.1), 3);
  EXPECT_EQ(CeilToInt64(2.0), 2);
  EXPECT_EQ(CeilToInt64(0.1, 5), 5);  // floor applies
}

TEST(MathUtilDeathTest, MedianOfEmptyAborts) {
  EXPECT_DEATH(Median({}), "empty");
}

}  // namespace
}  // namespace histk
