#include "histogram/ops.h"

#include <gtest/gtest.h>

#include "baseline/voptimal_dp.h"
#include "dist/generators.h"
#include "util/rng.h"

namespace histk {
namespace {

TEST(OpsTest, ProjectToBoundariesUsesIntervalMeans) {
  const Distribution d = Distribution::FromWeights({4, 0, 2, 2, 8, 8});
  const TilingHistogram h = ProjectToBoundaries(d, {1, 3, 5});
  EXPECT_DOUBLE_EQ(h.Value(0), d.IntervalMean(Interval(0, 1)));
  EXPECT_DOUBLE_EQ(h.Value(2), d.IntervalMean(Interval(2, 3)));
  EXPECT_DOUBLE_EQ(h.Value(4), d.IntervalMean(Interval(4, 5)));
}

TEST(OpsTest, ProjectionIsOptimalForItsBoundaries) {
  Rng rng(71);
  const HistogramSpec spec = MakeRandomKHistogram(48, 5, rng);
  const Distribution noisy = MakeNoisy(spec.dist, 0.4, rng);
  const std::vector<int64_t> ends{10, 20, 30, 47};
  const TilingHistogram proj = ProjectToBoundaries(noisy, ends);
  const double proj_err = proj.L2SquaredErrorTo(noisy);
  // Perturbing any piece value only hurts.
  for (size_t j = 0; j < proj.values().size(); ++j) {
    auto vals = proj.values();
    vals[j] += 0.01;
    const TilingHistogram worse =
        TilingHistogram::FromRightEnds(noisy.n(), ends, std::move(vals));
    EXPECT_GT(worse.L2SquaredErrorTo(noisy), proj_err);
  }
}

TEST(OpsTest, BoundariesSseMatchesProjectionError) {
  Rng rng(72);
  const Distribution d = MakeNoisy(Distribution::Uniform(32), 0.8, rng);
  const std::vector<int64_t> ends{7, 15, 23, 31};
  EXPECT_NEAR(BoundariesSse(d, ends),
              ProjectToBoundaries(d, ends).L2SquaredErrorTo(d), 1e-12);
}

TEST(OpsTest, BoundariesSseFullSplitIsZero) {
  const Distribution d = Distribution::FromWeights({1, 2, 3, 4});
  EXPECT_NEAR(BoundariesSse(d, {0, 1, 2, 3}), 0.0, 1e-15);
}

TEST(OpsTest, MinimalPieceCountExamples) {
  EXPECT_EQ(MinimalPieceCount(Distribution::Uniform(16)), 1);
  EXPECT_EQ(MinimalPieceCount(Distribution::FromWeights({1, 1, 2, 2, 2, 1})), 3);
  EXPECT_EQ(MinimalPieceCount(Distribution::PointMass(5, 2)), 3);  // 0s,1,0s
  EXPECT_EQ(MinimalPieceCount(Distribution::FromWeights({1, 2, 1, 2})), 4);
}

TEST(OpsTest, IsTilingKHistogramThresholds) {
  const Distribution d = Distribution::FromWeights({1, 1, 2, 2, 2, 1});
  EXPECT_FALSE(IsTilingKHistogram(d, 2));
  EXPECT_TRUE(IsTilingKHistogram(d, 3));
  EXPECT_TRUE(IsTilingKHistogram(d, 6));
}

TEST(OpsTest, GeneratedHistogramsSatisfyTheirK) {
  Rng rng(73);
  for (int64_t k : {1, 3, 8}) {
    const HistogramSpec spec = MakeRandomKHistogram(100, k, rng);
    EXPECT_TRUE(IsTilingKHistogram(spec.dist, k));
  }
}

TEST(ReduceToKPiecesTest, IdentityWhenAlreadySmall) {
  const TilingHistogram h(10, {{0, 4}, {5, 9}}, {0.1, 0.1});
  const TilingHistogram r = ReduceToKPieces(h, 3);
  EXPECT_EQ(r.k(), 2);
  for (int64_t i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(r.Value(i), h.Value(i));
}

TEST(ReduceToKPiecesTest, MergesLeastDamagingPieces) {
  // Values 1, 1.01, 5: merging the two near-equal pieces is clearly best.
  const TilingHistogram h(12, {{0, 3}, {4, 7}, {8, 11}}, {1.0, 1.01, 5.0});
  const TilingHistogram r = ReduceToKPieces(h, 2);
  ASSERT_EQ(r.k(), 2);
  EXPECT_EQ(r.pieces()[0], Interval(0, 7));
  EXPECT_NEAR(r.values()[0], 1.005, 1e-12);
  EXPECT_DOUBLE_EQ(r.values()[1], 5.0);
}

TEST(ReduceToKPiecesTest, MatchesElementLevelDpOnDistributions) {
  // Reducing an exact representation of p must give the same error as the
  // element-level DP restricted to h's boundaries... in particular, when h
  // has singleton pieces everywhere it IS the element-level problem.
  Rng rng(74);
  std::vector<double> w(16);
  for (auto& x : w) x = 0.05 + rng.NextDouble();
  const Distribution p = Distribution::FromWeights(w);
  std::vector<Interval> pieces;
  std::vector<double> vals;
  for (int64_t i = 0; i < 16; ++i) {
    pieces.emplace_back(i, i);
    vals.push_back(p.p(i));
  }
  const TilingHistogram h(16, pieces, vals);
  for (int64_t k : {2, 4, 7}) {
    const TilingHistogram r = ReduceToKPieces(h, k);
    EXPECT_LE(r.k(), k);
    // Error of the reduction against p equals the optimal DP error (the
    // reduction solved the same problem).
    EXPECT_NEAR(r.L2SquaredErrorTo(p), BoundariesSse(p, [&] {
                  std::vector<int64_t> ends;
                  for (const auto& piece : r.pieces()) ends.push_back(piece.hi);
                  return ends;
                }()),
                1e-12);
    // With singleton input pieces the reduction IS the element-level DP.
    EXPECT_NEAR(r.L2SquaredErrorTo(p), VOptimalSse(p, k), 1e-12);
  }
}

TEST(MergeTilingsTest, PointwiseCombination) {
  const TilingHistogram a(8, {{0, 3}, {4, 7}}, {0.2, 0.05});
  const TilingHistogram b(8, {{0, 1}, {2, 7}}, {0.3, 0.1});
  const TilingHistogram m = MergeTilings(a, b, 0.5, 0.5);
  for (int64_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(m.Value(i), 0.5 * a.Value(i) + 0.5 * b.Value(i)) << i;
  }
  // Union refinement: boundaries at 1, 3 -> 3 pieces.
  EXPECT_EQ(m.k(), 3);
}

TEST(MergeTilingsTest, ShardWeightsRecoverGlobalHistogram) {
  // Two shards with 1:3 size ratio; merging shard-exact histograms with
  // those weights reproduces the pooled distribution's projection.
  const Distribution shard1 = Distribution::FromWeights({4, 4, 0, 0});
  const Distribution shard2 = Distribution::FromWeights({0, 0, 2, 6});
  const TilingHistogram h1 = ProjectToBoundaries(shard1, {1, 3});
  const TilingHistogram h2 = ProjectToBoundaries(shard2, {1, 3});
  const TilingHistogram merged = MergeTilings(h1, h2, 0.25, 0.75);
  // Pooled: 0.25*shard1 + 0.75*shard2.
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(merged.Value(i),
                0.25 * h1.Value(i) + 0.75 * h2.Value(i), 1e-12);
  }
  EXPECT_NEAR(merged.Mass(Interval::Full(4)), 1.0, 1e-12);
}

TEST(MergeTilingsTest, IdentityMergeCondenses) {
  const TilingHistogram a(6, {{0, 2}, {3, 5}}, {0.1, 0.23333333});
  const TilingHistogram m = MergeTilings(a, a, 0.5, 0.5);
  EXPECT_EQ(m.k(), 2);
  for (int64_t i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(m.Value(i), a.Value(i));
}

TEST(ReduceToKPiecesTest, ReductionErrorIsOptimalAmongBoundarySubsets) {
  // Brute-force check on a small instance: no choice of k-1 cut positions
  // among h's piece boundaries does better.
  const TilingHistogram h(10, {{0, 1}, {2, 4}, {5, 6}, {7, 9}},
                          {0.2, 0.05, 0.15, 0.05});
  const TilingHistogram r = ReduceToKPieces(h, 2);
  const Distribution href = h.ToDistribution();
  const double red_err = r.L2SquaredErrorTo(href);
  for (int64_t cut = 0; cut < 3; ++cut) {
    std::vector<int64_t> ends{h.pieces()[static_cast<size_t>(cut)].hi, 9};
    EXPECT_GE(ProjectToBoundaries(href, ends).L2SquaredErrorTo(href),
              red_err - 1e-12);
  }
}

}  // namespace
}  // namespace histk
