#include "dist/dataset.h"

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "dist/generators.h"

namespace histk {
namespace {

TEST(DatasetTest, DrawsMatchItemFrequencies) {
  // D = {0 x3, 5 x1}: p(0) = 0.75, p(5) = 0.25.
  const DatasetSampler s(8, {0, 0, 0, 5});
  Rng rng(1301);
  int64_t zeros = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) zeros += s.Draw(rng) == 0;
  EXPECT_NEAR(static_cast<double>(zeros) / trials, 0.75, 0.01);
}

TEST(DatasetTest, EmpiricalDistMatchesCounts) {
  const DatasetSampler s(4, {1, 1, 2, 3, 3, 3});
  const Distribution d = s.EmpiricalDist();
  EXPECT_DOUBLE_EQ(d.p(0), 0.0);
  EXPECT_DOUBLE_EQ(d.p(1), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.p(2), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.p(3), 3.0 / 6.0);
  EXPECT_EQ(s.size(), 6);
}

TEST(DatasetTest, LearnerRunsOnDatasetOracle) {
  // Materialize a data set from a 3-histogram, learn from random elements.
  Rng gen(1302);
  const HistogramSpec spec = MakeRandomKHistogram(64, 3, gen, 20.0);
  const AliasSampler source(spec.dist);
  std::vector<int64_t> items = source.DrawMany(300000, gen);
  const DatasetSampler dataset(64, std::move(items));

  LearnOptions opt;
  opt.k = 3;
  opt.eps = 0.2;
  Rng rng(1303);
  const LearnResult res = LearnHistogram(dataset, opt, rng);
  // Learned histogram approximates the data set's empirical distribution.
  EXPECT_LT(res.tiling.L2SquaredErrorTo(dataset.EmpiricalDist()), 0.01);
}

TEST(DatasetDeathTest, RejectsEmptyAndOutOfDomain) {
  EXPECT_DEATH(DatasetSampler(4, {}), "non-empty");
  EXPECT_DEATH(DatasetSampler(4, {0, 4}), "out of domain");
}

}  // namespace
}  // namespace histk
