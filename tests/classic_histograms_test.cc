#include "baseline/classic_histograms.h"

#include <gtest/gtest.h>

#include "baseline/voptimal_dp.h"
#include "dist/generators.h"
#include "dist/sampler.h"
#include "util/rng.h"

namespace histk {
namespace {

SampleSet DrawFrom(const Distribution& d, int64_t m, uint64_t seed) {
  const AliasSampler sampler(d);
  Rng rng(seed);
  return SampleSet::Draw(sampler, m, rng);
}

TEST(EquiWidthTest, PiecesHaveEqualLength) {
  const SampleSet s = DrawFrom(Distribution::Uniform(100), 10000, 1);
  const TilingHistogram h = EquiWidthFromSamples(5, s);
  ASSERT_EQ(h.k(), 5);
  for (const Interval& piece : h.pieces()) EXPECT_EQ(piece.length(), 20);
}

TEST(EquiWidthTest, TotalMassNearOne) {
  const SampleSet s = DrawFrom(MakeZipf(64, 1.2), 50000, 2);
  const TilingHistogram h = EquiWidthFromSamples(8, s);
  EXPECT_NEAR(h.Mass(Interval::Full(64)), 1.0, 1e-9);
}

TEST(EquiWidthTest, ExactMatchesSampledInTheLimit) {
  const Distribution d = MakeZipf(50, 1.0);
  const TilingHistogram exact = EquiWidthExact(d, 5);
  const TilingHistogram sampled = EquiWidthFromSamples(5, DrawFrom(d, 400000, 3));
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(sampled.Value(i), exact.Value(i), 0.01);
  }
}

TEST(EquiWidthTest, SmallDomainClampsK) {
  const SampleSet s = DrawFrom(Distribution::Uniform(3), 100, 4);
  EXPECT_LE(EquiWidthFromSamples(10, s).k(), 3);
}

TEST(EquiDepthTest, PiecesBalanceSampleMass) {
  const SampleSet s = DrawFrom(MakeZipf(256, 1.5), 100000, 5);
  const TilingHistogram h = EquiDepthFromSamples(8, s);
  EXPECT_LE(h.k(), 8);
  // Every piece except possibly heavy singleton-ish ones should hold
  // roughly m/k samples; check no piece exceeds ~2 shares unless it is a
  // single element (unsplittable).
  const int64_t share = s.m() / 8;
  for (const Interval& piece : h.pieces()) {
    if (piece.length() > 1) {
      EXPECT_LE(s.Count(piece), 3 * share) << piece.ToString();
    }
  }
}

TEST(EquiDepthTest, UniformDataGivesNearEqualWidths) {
  const SampleSet s = DrawFrom(Distribution::Uniform(100), 100000, 6);
  const TilingHistogram h = EquiDepthFromSamples(5, s);
  ASSERT_EQ(h.k(), 5);
  for (const Interval& piece : h.pieces()) {
    EXPECT_NEAR(static_cast<double>(piece.length()), 20.0, 6.0);
  }
}

TEST(EquiDepthTest, HandlesPointMass) {
  const SampleSet s = DrawFrom(Distribution::PointMass(64, 10), 1000, 7);
  const TilingHistogram h = EquiDepthFromSamples(4, s);
  EXPECT_GE(h.k(), 1);
  EXPECT_NEAR(h.Mass(Interval::Full(64)), 1.0, 1e-9);
}

TEST(CompressedTest, HeavyElementsBecomeSingletons) {
  // Two heavy atoms on a uniform floor.
  std::vector<double> w(50, 1.0);
  w[10] = 200.0;
  w[30] = 150.0;
  const Distribution d = Distribution::FromWeights(w);
  const SampleSet s = DrawFrom(d, 50000, 8);
  const TilingHistogram h = CompressedFromSamples(8, s);
  bool found10 = false, found30 = false;
  for (const Interval& piece : h.pieces()) {
    if (piece == Interval(10, 10)) found10 = true;
    if (piece == Interval(30, 30)) found30 = true;
  }
  EXPECT_TRUE(found10);
  EXPECT_TRUE(found30);
  EXPECT_LE(h.k(), 8);
}

TEST(CompressedTest, NoHeavyFallsBackToEquiDepth) {
  const SampleSet s = DrawFrom(Distribution::Uniform(64), 10000, 9);
  const TilingHistogram h = CompressedFromSamples(4, s);
  EXPECT_LE(h.k(), 4);
  EXPECT_NEAR(h.Mass(Interval::Full(64)), 1.0, 1e-9);
}

TEST(CompressedTest, BeatsEquiDepthOnSpikyData) {
  // Spiky data is the design case for compressed histograms.
  std::vector<double> w(128, 1.0);
  w[5] = 500;
  w[64] = 400;
  w[100] = 300;
  const Distribution d = Distribution::FromWeights(w);
  const SampleSet s = DrawFrom(d, 200000, 10);
  const double comp_err = CompressedFromSamples(8, s).L2SquaredErrorTo(d);
  const double depth_err = EquiDepthFromSamples(8, s).L2SquaredErrorTo(d);
  EXPECT_LT(comp_err, depth_err);
}

TEST(GreedyMergeTest, ReachesExactlyKPieces) {
  Rng rng(11);
  const Distribution d = MakeNoisy(Distribution::Uniform(64), 0.9, rng);
  for (int64_t k : {1, 4, 16}) {
    EXPECT_EQ(GreedyMergeExact(d, k).k(), k);
  }
}

TEST(GreedyMergeTest, ZeroErrorOnExactHistograms) {
  Rng rng(12);
  const HistogramSpec spec = MakeRandomKHistogram(96, 6, rng);
  const TilingHistogram h = GreedyMergeExact(spec.dist, 6);
  EXPECT_NEAR(h.L2SquaredErrorTo(spec.dist), 0.0, 1e-12);
}

TEST(GreedyMergeTest, NearOptimalButNeverBetterThanDp) {
  Rng rng(13);
  const Distribution d = MakeNoisy(MakeZipf(80, 1.0), 0.6, rng);
  for (int64_t k : {2, 5, 10}) {
    const double merge_err = GreedyMergeExact(d, k).L2SquaredErrorTo(d);
    const double opt = VOptimalSse(d, k);
    EXPECT_GE(merge_err, opt - 1e-12);
    EXPECT_LT(merge_err, 5.0 * opt + 1e-6);  // heuristic quality sanity band
  }
}

TEST(GreedyMergeTest, SinglePieceEqualsGlobalMean) {
  const Distribution d = MakeZipf(32, 0.8);
  const TilingHistogram h = GreedyMergeExact(d, 1);
  EXPECT_NEAR(h.Value(0), d.IntervalMean(Interval::Full(32)), 1e-12);
}

}  // namespace
}  // namespace histk
