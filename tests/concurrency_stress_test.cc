// Concurrency stress for the sharded draw/count fan-out and the engine
// facade. These tests are meaningful in every build, but their real job is
// under the `tsan` preset (-fsanitize=thread), where they hammer the
// lock-free paths this PR introduced:
//
//   1. A shared const sampler serves DrawManySharded / DrawCountsSharded /
//      SampleSetGroup::DrawSharded from many OS threads at once — the alias
//      tables must be safely readable concurrently, and every caller's
//      result must stay byte-identical to a sequential reference.
//   2. SampleCounter's per-worker shard design (CountSink::AcquireShard)
//      must produce byte-identical SampleSets at ANY worker count with no
//      locking on the Consume hot path.
//   3. Concurrent Engine sessions over one oracle must not interfere:
//      every thread's Report matches the single-threaded reference.
//   4. ConcurrentHistogram's lock-free ingest: many writers Record while
//      readers Snapshot/Merge/DeltaSince concurrently — totals must be
//      monotone per reader, and the final snapshot byte-identical to a
//      sequential reference over the same values.
#include <cstdint>
#include <optional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/distribution.h"
#include "dist/generators.h"
#include "dist/sampler.h"
#include "engine/engine.h"
#include "sample/counter.h"
#include "sample/sample_set.h"
#include "stream/concurrent_histogram.h"
#include "stream/log_bucket.h"
#include "util/interval.h"
#include "util/rng.h"

namespace histk {
namespace {

// Large enough that the sharded paths split into several kShardChunk
// chunks, small enough that the suite stays fast under TSan's slowdown.
constexpr int64_t kDraws = int64_t{1} << 18;
constexpr int kOuterThreads = 8;

Distribution DenseSkewed() { return MakeZipf(512, 1.1); }

Distribution BucketHuge() {
  const int64_t n = int64_t{1} << 30;
  return Distribution::FromBucketWeights(
      n, {999, n / 4, n / 2, n - 2, n - 1}, {4.0, 2.0, 0.0, 3.0, 1.0});
}

void ExpectSameSampleSet(const SampleSet& a, const SampleSet& b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  ASSERT_EQ(a.distinct_values(), b.distinct_values());
  const Interval full = Interval::Full(a.n());
  EXPECT_EQ(a.Count(full), b.Count(full));
  EXPECT_EQ(a.Collisions(full), b.Collisions(full));
  Rng probe(0xABCD);
  for (int q = 0; q < 32; ++q) {
    const int64_t x = probe.UniformInRange(0, a.n() - 1);
    const int64_t y = probe.UniformInRange(0, a.n() - 1);
    const Interval I(std::min(x, y), std::max(x, y));
    EXPECT_EQ(a.Count(I), b.Count(I));
    EXPECT_EQ(a.Collisions(I), b.Collisions(I));
  }
}

// ------------------------------------------------- shared-sampler readers

// Many threads draw from ONE const sampler simultaneously, each through the
// sharded batched kernel (which itself spawns workers). Every thread's
// output must equal the sequential reference for its seed: the sampler's
// tables are read-only shared state, and the per-thread Rngs are the only
// mutable state.
TEST(ConcurrencyStressTest, ConcurrentDrawManyShardedOnSharedSampler) {
  const Distribution d = DenseSkewed();
  const AliasSampler sampler(d);

  std::vector<std::vector<int64_t>> expected(kOuterThreads);
  for (int t = 0; t < kOuterThreads; ++t) {
    Rng rng(1000 + t);
    expected[t] = sampler.DrawManySharded(kDraws, rng, /*num_threads=*/1);
  }

  std::vector<std::vector<int64_t>> got(kOuterThreads);
  std::vector<std::thread> threads;
  threads.reserve(kOuterThreads);
  for (int t = 0; t < kOuterThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      got[t] = sampler.DrawManySharded(kDraws, rng, /*num_threads=*/4);
    });
  }
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kOuterThreads; ++t) EXPECT_EQ(got[t], expected[t]);
}

// The fused draw->count path under the same regime: concurrent
// SampleSet::DrawSharded callers over one sampler, inner worker counts
// varying per caller. Byte-identical sets regardless.
TEST(ConcurrencyStressTest, ConcurrentDrawCountsShardedOnSharedSampler) {
  for (const Distribution& d : {DenseSkewed(), BucketHuge()}) {
    const AliasSampler sampler(d);

    std::vector<SampleSet> expected;
    for (int t = 0; t < kOuterThreads; ++t) {
      Rng rng(2000 + t);
      expected.push_back(
          SampleSet::DrawSharded(sampler, kDraws, rng, /*num_threads=*/1));
    }

    std::vector<std::optional<SampleSet>> got(kOuterThreads);
    std::vector<std::thread> threads;
    threads.reserve(kOuterThreads);
    for (int t = 0; t < kOuterThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(2000 + t);
        got[t] = SampleSet::DrawSharded(sampler, kDraws, rng,
                                        /*num_threads=*/1 + t % 4);
      });
    }
    for (std::thread& th : threads) th.join();

    for (int t = 0; t < kOuterThreads; ++t) {
      ASSERT_TRUE(got[t].has_value());
      ExpectSameSampleSet(*got[t], expected[t]);
    }
  }
}

// SampleSetGroup::DrawSharded (r sets, each fused+sharded) from many
// threads at once against one sampler.
TEST(ConcurrencyStressTest, ConcurrentGroupDrawShardedOnSharedSampler) {
  const Distribution d = DenseSkewed();
  const AliasSampler sampler(d);
  const int64_t r = 4;
  const int64_t m = kDraws / 8;

  Rng ref_rng(42);
  const SampleSetGroup reference =
      SampleSetGroup::DrawSharded(sampler, r, m, ref_rng, /*num_threads=*/1);

  std::vector<std::thread> threads;
  std::vector<int> failures(kOuterThreads, 0);
  threads.reserve(kOuterThreads);
  for (int t = 0; t < kOuterThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(42);
      const SampleSetGroup g =
          SampleSetGroup::DrawSharded(sampler, r, m, rng,
                                      /*num_threads=*/2 + t % 3);
      if (g.r() != reference.r() || g.n() != reference.n()) {
        failures[t] = 1;
        return;
      }
      for (int64_t j = 0; j < r; ++j) {
        if (g.set(j).distinct_values() !=
            reference.set(j).distinct_values()) {
          failures[t] = 1;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kOuterThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t << " diverged";
  }
}

// ------------------------------------------------- shard-merge parity

// The SampleCounter per-worker shard design directly: the fused sharded
// pipeline must yield byte-identical sets and exact totals at every worker
// count, including counts far above the chunk count (idle workers).
TEST(ConcurrencyStressTest, ShardMergeByteIdenticalAcrossWorkerCounts) {
  for (const Distribution& d : {DenseSkewed(), BucketHuge()}) {
    const AliasSampler sampler(d);

    Rng ref_rng(7);
    SampleCounter ref_counter(sampler.n(), kDraws);
    sampler.DrawCountsSharded(kDraws, ref_rng, ref_counter, 1);
    ASSERT_EQ(ref_counter.total(), kDraws);
    const SampleSet reference = ref_counter.Build();
    Rng ref_probe = ref_rng;  // post-draw rng state fingerprint
    const uint64_t expect_next = ref_probe.NextU64();

    for (int workers : {2, 3, 4, 8, 16}) {
      Rng rng(7);
      SampleCounter counter(sampler.n(), kDraws);
      sampler.DrawCountsSharded(kDraws, rng, counter, workers);
      EXPECT_EQ(counter.total(), kDraws) << "workers=" << workers;
      ExpectSameSampleSet(counter.Build(), reference);
      EXPECT_EQ(rng.NextU64(), expect_next) << "workers=" << workers;
    }
  }
}

// ------------------------------------------------- concurrent engine runs

// Engine sessions are stateless and hold only const references; running
// the same spec from many threads (each spec itself drawing sharded) must
// give every thread the single-threaded reference report.
TEST(ConcurrencyStressTest, ConcurrentEngineSessionsOverOneOracle) {
  const Distribution d = MakeZipf(256, 1.2);
  const AliasSampler oracle(d);
  const Engine engine(oracle, d);

  LearnSpec spec;
  spec.seed = 11;
  spec.budget = 400'000;
  spec.options.k = 4;
  spec.options.eps = 0.25;
  spec.draw_threads = 2;

  const Result<Report> reference = engine.Run(spec);
  ASSERT_TRUE(reference.ok());

  std::vector<int> failures(kOuterThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kOuterThreads);
  for (int t = 0; t < kOuterThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread constructs its own session over the shared oracle.
      const Engine session(oracle, d);
      const Result<Report> r = session.Run(spec);
      if (!r.ok() ||
          r->outcome != reference->outcome ||
          r->telemetry.samples_drawn !=
              reference->telemetry.samples_drawn ||
          !r->learn.has_value() ||
          r->learn->tiling.ToString() !=
              reference->learn->tiling.ToString()) {
        failures[t] = 1;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kOuterThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t << " diverged";
  }
}

// ------------------------------------------------- lock-free telemetry

// N writers hammer Record while M readers hammer Snapshot/Merge/DeltaSince
// against the same histogram, with no coordination beyond the final joins.
// Contracts under fire:
//   * every value is conserved: the final snapshot's count VECTOR equals a
//     sequential reference over the same deterministic value streams;
//   * each reader observes monotone non-decreasing totals, and successive
//     snapshots satisfy the DeltaSince domination contract (its always-on
//     check doubles as the assertion);
//   * Merge during writes conserves whatever the two operands held.
// Under the tsan preset this is the race gauntlet for the relaxed-atomics
// design; in normal builds it is a hard conservation test.
TEST(ConcurrencyStressTest, ConcurrentHistogramWritersAndReaders) {
  constexpr int kWriters = 8;
  constexpr int kReaders = 4;
  constexpr int64_t kPerWriter = kDraws / 8;
  constexpr int kSnapshotsPerReader = 64;
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kWriters) * static_cast<uint64_t>(kPerWriter);

  // Writer w's value stream is Rng(6000 + w): replayable sequentially.
  auto writer_value = [](Rng& rng, int w) {
    // Mix of narrow and full-width values so both the denormal and the
    // geometric bucket regions see traffic.
    return rng.NextU64() >> (8 * (w % 8));
  };

  ConcurrentHistogram sequential(kLogBucketDefaultMantissaBits, /*num_shards=*/1);
  for (int w = 0; w < kWriters; ++w) {
    Rng rng(6000 + w);
    for (int64_t i = 0; i < kPerWriter; ++i) {
      sequential.Record(writer_value(rng, w));
    }
  }
  const HistogramSnapshot expected = sequential.Snapshot();
  ASSERT_EQ(expected.TotalCount(), kTotal);

  ConcurrentHistogram hist;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  std::vector<int> reader_failures(kReaders, 0);

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&hist, &writer_value, w] {
      Rng rng(6000 + w);
      for (int64_t i = 0; i < kPerWriter; ++i) {
        hist.Record(writer_value(rng, w));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&hist, &reader_failures, r] {
      HistogramSnapshot prev = hist.Snapshot();
      HistogramSnapshot merged = prev;  // rolling Merge target under fire
      for (int s = 0; s < kSnapshotsPerReader; ++s) {
        const HistogramSnapshot now = hist.Snapshot();
        if (now.TotalCount() < prev.TotalCount() || now.TotalCount() > kTotal) {
          reader_failures[r] = 1;
          return;
        }
        // DeltaSince returns InvalidArgument if `now` fails to dominate
        // `prev` bucketwise — per-reader snapshots of one histogram must be
        // an ordered pair even mid-write.
        const Result<HistogramSnapshot> window = now.DeltaSince(prev);
        if (!window.ok() || !merged.Merge(*window).ok()) {
          reader_failures[r] = 1;
          return;
        }
        if (merged != now) {
          reader_failures[r] = 1;  // rolling merge lost or invented counts
          return;
        }
        prev = now;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int r = 0; r < kReaders; ++r) {
    EXPECT_EQ(reader_failures[r], 0) << "reader " << r << " saw a violation";
  }

  // Byte-checked conservation: not just the totals — the entire per-bucket
  // count vector must match the sequential reference exactly.
  const HistogramSnapshot final_snap = hist.Snapshot();
  EXPECT_EQ(final_snap.TotalCount(), kTotal);
  EXPECT_EQ(final_snap.counts(), expected.counts());
  EXPECT_EQ(final_snap, expected);
}

// Cross-histogram aggregation while both operands are still being written:
// Merge of two concurrent snapshots conserves exactly the counts the two
// snapshots held (commutativity under fire).
TEST(ConcurrencyStressTest, ConcurrentHistogramMergeUnderWrites) {
  constexpr int64_t kPerHistogram = kDraws / 8;
  ConcurrentHistogram a, b;

  std::vector<std::thread> writers;
  writers.reserve(2);
  for (ConcurrentHistogram* h : {&a, &b}) {
    writers.emplace_back([h] {
      Rng rng(7000);  // same stream for both: only conservation is at stake
      for (int64_t i = 0; i < kPerHistogram; ++i) h->Record(rng.NextU64() >> 20);
    });
  }

  for (int round = 0; round < 32; ++round) {
    const HistogramSnapshot sa = a.Snapshot();
    const HistogramSnapshot sb = b.Snapshot();
    HistogramSnapshot ab = sa;
    ASSERT_TRUE(ab.Merge(sb).ok());
    HistogramSnapshot ba = sb;
    ASSERT_TRUE(ba.Merge(sa).ok());
    ASSERT_EQ(ab, ba) << "round " << round;
    ASSERT_EQ(ab.TotalCount(), sa.TotalCount() + sb.TotalCount());
  }
  for (std::thread& th : writers) th.join();

  HistogramSnapshot final_ab = a.Snapshot();
  ASSERT_TRUE(final_ab.Merge(b.Snapshot()).ok());
  EXPECT_EQ(final_ab.TotalCount(),
            2 * static_cast<uint64_t>(kPerHistogram));
}

TEST(ConcurrencyStressTest, GovernedSessionsBackpressureUnderLoad) {
  // 8 threads hammer one governor with Engine sessions while only 2 slots
  // (and a finite aggregate budget) exist. Every run must end ok or be
  // rejected with a typed kUnavailable — never crash, hang, or trip the
  // governor's release-accounting invariant — and afterwards the governor
  // must drain back to zero.
  const Distribution d = MakeZipf(256, 1.1);
  const AliasSampler oracle(d);
  const Engine engine(oracle);

  SessionGovernor governor(
      {/*max_sessions=*/2, /*max_outstanding_budget=*/1 << 26, /*retry_after_ms=*/1});

  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 6;
  std::vector<std::thread> workers;
  std::vector<int> completed(kThreads, 0), rejected(kThreads, 0), wrong(kThreads, 0);
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int run = 0; run < kRunsPerThread; ++run) {
        TestSpec spec;
        spec.seed = static_cast<uint64_t>(101 + t * kRunsPerThread + run);
        spec.budget = 1 << 23;  // a ~5M-draw session fits with headroom
        spec.config.k = 4;
        spec.config.eps = 0.3;
        spec.config.sample_scale = 0.005;  // keep each session small
        spec.config.r_override = 9;        // and fast (like the parity tests)
        spec.policy.governor = &governor;
        spec.policy.retry.max_retries = 0;
        const Result<Report> result = engine.Run(spec);
        if (result.ok() && result->status == StatusCode::kOk &&
            !result->degraded) {
          ++completed[static_cast<size_t>(t)];
        } else if (!result.ok() &&
                   result.status().code() == StatusCode::kUnavailable) {
          ++rejected[static_cast<size_t>(t)];
        } else {
          ++wrong[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& th : workers) th.join();

  int total_completed = 0, total_rejected = 0, total_wrong = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_completed += completed[static_cast<size_t>(t)];
    total_rejected += rejected[static_cast<size_t>(t)];
    total_wrong += wrong[static_cast<size_t>(t)];
  }
  EXPECT_EQ(total_wrong, 0);
  EXPECT_EQ(total_completed + total_rejected, kThreads * kRunsPerThread);
  EXPECT_GT(total_completed, 0);  // 2 slots: someone always gets through
  EXPECT_EQ(governor.in_flight(), 0);
  EXPECT_EQ(governor.outstanding_budget(), 0);
  EXPECT_EQ(governor.rejected(), total_rejected);
}

}  // namespace
}  // namespace histk
