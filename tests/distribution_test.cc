#include "dist/distribution.h"

#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace histk {
namespace {

Distribution MakeTestDist() {
  // Hand-picked weights with zeros and repeats.
  return Distribution::FromWeights({1, 0, 3, 3, 0, 2, 1, 0, 0, 4});
}

TEST(DistributionTest, FromWeightsNormalizes) {
  const Distribution d = MakeTestDist();
  double total = 0.0;
  for (int64_t i = 0; i < d.n(); ++i) total += d.p(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(d.p(0), 1.0 / 14.0, 1e-12);
  EXPECT_NEAR(d.p(9), 4.0 / 14.0, 1e-12);
}

TEST(DistributionTest, FromPmfAcceptsExact) {
  const Distribution d = Distribution::FromPmf({0.25, 0.25, 0.5});
  EXPECT_EQ(d.n(), 3);
  EXPECT_DOUBLE_EQ(d.p(2), 0.5);
}

TEST(DistributionDeathTest, FromPmfRejectsNonNormalized) {
  EXPECT_DEATH(Distribution::FromPmf({0.3, 0.3}), "sum to 1");
}

TEST(DistributionDeathTest, FromWeightsRejectsNegative) {
  EXPECT_DEATH(Distribution::FromWeights({0.5, -0.1}), "finite and >= 0");
}

TEST(DistributionDeathTest, FromWeightsRejectsAllZero) {
  EXPECT_DEATH(Distribution::FromWeights({0.0, 0.0}), "positive");
}

TEST(DistributionTest, UniformHasEqualMass) {
  const Distribution u = Distribution::Uniform(8);
  for (int64_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(u.p(i), 0.125);
  EXPECT_NEAR(u.L2NormSquared(), 1.0 / 8.0, 1e-15);
}

TEST(DistributionTest, PointMassConcentrates) {
  const Distribution d = Distribution::PointMass(5, 3);
  EXPECT_DOUBLE_EQ(d.p(3), 1.0);
  EXPECT_DOUBLE_EQ(d.Weight(Interval(0, 2)), 0.0);
  EXPECT_DOUBLE_EQ(d.L2NormSquared(), 1.0);
}

TEST(DistributionTest, WeightMatchesBruteForce) {
  const Distribution d = MakeTestDist();
  for (int64_t lo = 0; lo < d.n(); ++lo) {
    for (int64_t hi = lo; hi < d.n(); ++hi) {
      double expect = 0.0;
      for (int64_t i = lo; i <= hi; ++i) expect += d.p(i);
      EXPECT_NEAR(d.Weight(Interval(lo, hi)), expect, 1e-12)
          << "I=[" << lo << "," << hi << "]";
    }
  }
}

TEST(DistributionTest, SumSquaresMatchesBruteForce) {
  const Distribution d = MakeTestDist();
  for (int64_t lo = 0; lo < d.n(); ++lo) {
    for (int64_t hi = lo; hi < d.n(); ++hi) {
      double expect = 0.0;
      for (int64_t i = lo; i <= hi; ++i) expect += d.p(i) * d.p(i);
      EXPECT_NEAR(d.SumSquares(Interval(lo, hi)), expect, 1e-12);
    }
  }
}

TEST(DistributionTest, WeightOfEmptyAndClippedIntervals) {
  const Distribution d = MakeTestDist();
  EXPECT_DOUBLE_EQ(d.Weight(Interval::Empty()), 0.0);
  // Clipping: interval extending past the domain counts only the inside.
  EXPECT_NEAR(d.Weight(Interval(8, 100)), d.Weight(Interval(8, 9)), 1e-15);
  EXPECT_NEAR(d.Weight(Interval(-5, 2)), d.Weight(Interval(0, 2)), 1e-15);
}

TEST(DistributionTest, IntervalSseIsMinOverConstants) {
  const Distribution d = MakeTestDist();
  const Interval I(2, 6);
  const double mean = d.IntervalMean(I);
  auto sse_at = [&](double c) {
    double acc = 0.0;
    for (int64_t i = I.lo; i <= I.hi; ++i) acc += (d.p(i) - c) * (d.p(i) - c);
    return acc;
  };
  EXPECT_NEAR(d.IntervalSse(I), sse_at(mean), 1e-12);
  // Any other constant does worse.
  EXPECT_GT(sse_at(mean + 0.01), d.IntervalSse(I));
  EXPECT_GT(sse_at(mean - 0.01), d.IntervalSse(I));
}

TEST(DistributionTest, IntervalSseZeroOnFlatRuns) {
  const Distribution d = MakeTestDist();
  EXPECT_NEAR(d.IntervalSse(Interval(2, 3)), 0.0, 1e-15);  // two equal weights
  EXPECT_NEAR(d.IntervalSse(Interval(7, 8)), 0.0, 1e-15);  // two zeros
  EXPECT_NEAR(d.IntervalSse(Interval(5, 5)), 0.0, 1e-15);  // singleton
}

TEST(DistributionTest, RestrictIsConditional) {
  const Distribution d = MakeTestDist();
  const Interval I(2, 5);
  const Distribution r = d.Restrict(I);
  EXPECT_EQ(r.n(), 4);
  const double w = d.Weight(I);
  for (int64_t i = 0; i < 4; ++i) EXPECT_NEAR(r.p(i), d.p(I.lo + i) / w, 1e-12);
}

TEST(DistributionDeathTest, RestrictZeroWeightAborts) {
  const Distribution d = MakeTestDist();
  EXPECT_DEATH(d.Restrict(Interval(7, 8)), "zero-weight");
}

TEST(DistributionTest, IsFlatOnUniformAndZeroIntervals) {
  const Distribution d = MakeTestDist();
  EXPECT_TRUE(d.IsFlat(Interval(2, 3)));   // equal masses
  EXPECT_TRUE(d.IsFlat(Interval(7, 8)));   // zero weight
  EXPECT_TRUE(d.IsFlat(Interval(0, 0)));   // singleton
  EXPECT_FALSE(d.IsFlat(Interval(0, 2)));  // mixed
  EXPECT_TRUE(Distribution::Uniform(16).IsFlat(Interval::Full(16)));
}

TEST(DistributionTest, L1DistanceBasics) {
  const Distribution a = Distribution::FromPmf({0.5, 0.5, 0.0});
  const Distribution b = Distribution::FromPmf({0.0, 0.5, 0.5});
  EXPECT_NEAR(a.L1DistanceTo(b), 1.0, 1e-12);
  EXPECT_NEAR(a.L1DistanceTo(a), 0.0, 1e-15);
  // Symmetry.
  EXPECT_NEAR(a.L1DistanceTo(b), b.L1DistanceTo(a), 1e-15);
}

TEST(DistributionTest, L2DistanceBasics) {
  const Distribution a = Distribution::FromPmf({1.0, 0.0});
  const Distribution b = Distribution::FromPmf({0.0, 1.0});
  EXPECT_NEAR(a.L2DistanceTo(b), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(a.DistanceTo(b, Norm::kL2), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(a.DistanceTo(b, Norm::kL1), 2.0, 1e-12);
}

TEST(DistributionTest, L1LeqSqrtNTimesL2) {
  // Cauchy–Schwarz sanity on random pairs.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> wa(32), wb(32);
    for (auto& w : wa) w = rng.NextDouble();
    for (auto& w : wb) w = rng.NextDouble();
    const Distribution a = Distribution::FromWeights(wa);
    const Distribution b = Distribution::FromWeights(wb);
    EXPECT_LE(a.L1DistanceTo(b), std::sqrt(32.0) * a.L2DistanceTo(b) + 1e-12);
    EXPECT_LE(a.L2DistanceTo(b), a.L1DistanceTo(b) + 1e-12);
  }
}

TEST(DistributionTest, DistanceToValuesMatchesDistribution) {
  const Distribution a = MakeTestDist();
  const Distribution b = Distribution::Uniform(10);
  std::vector<double> vals = b.DensePmf();
  EXPECT_NEAR(a.L1DistanceToValues(vals), a.L1DistanceTo(b), 1e-12);
  EXPECT_NEAR(a.L2SquaredDistanceToValues(vals),
              a.L2DistanceTo(b) * a.L2DistanceTo(b), 1e-12);
}

TEST(DistributionTest, NormNames) {
  EXPECT_STREQ(NormName(Norm::kL1), "L1");
  EXPECT_STREQ(NormName(Norm::kL2), "L2");
}

}  // namespace
}  // namespace histk
