#include "baseline/far_instances.h"

#include <cmath>

#include <gtest/gtest.h>

#include "baseline/classic_histograms.h"
#include "baseline/voptimal_dp.h"
#include "dist/generators.h"
#include "histogram/ops.h"

namespace histk {
namespace {

TEST(FarInstancesTest, SpikesAreCertifiedL2Far) {
  const auto inst = MakeL2FarSpikes(256, 2, 0.1);
  ASSERT_TRUE(inst.has_value());
  EXPECT_GE(inst->certified_distance, 0.1 * 1.05 - 1e-12);
  EXPECT_EQ(inst->norm, Norm::kL2);
  // Re-verify the certificate independently.
  EXPECT_NEAR(std::sqrt(VOptimalSse(inst->dist, 2)), inst->certified_distance, 1e-9);
}

TEST(FarInstancesTest, SpikesInfeasibleForHugeK) {
  // L2 distance from a k-histogram class is at most ~1/(2 sqrt(k)); for
  // k large relative to 1/eps^2 no spike family works.
  const auto inst = MakeL2FarSpikes(256, 100, 0.4);
  EXPECT_FALSE(inst.has_value());
}

TEST(FarInstancesTest, ZipfCertifiedWhenHeadHeavy) {
  const auto inst = MakeL2FarZipf(512, 2, 0.1);
  ASSERT_TRUE(inst.has_value());
  EXPECT_GE(inst->certified_distance, 0.1);
  EXPECT_NEAR(std::sqrt(VOptimalSse(inst->dist, 2)), inst->certified_distance, 1e-9);
}

TEST(FarInstancesTest, ZigzagCertificateIsValidLowerBound) {
  const FarInstance inst = MakeL1FarZigzag(128, 4, 0.2);
  EXPECT_GE(inst.certified_distance, 0.2);
  // The certificate must lower-bound the distance to ANY 4-histogram;
  // check against a few explicit candidates.
  const auto opt = VOptimalHistogram(inst.dist, 4);
  EXPECT_GE(opt.histogram.L1ErrorTo(inst.dist), inst.certified_distance - 1e-9);
  EXPECT_GE(EquiWidthExact(inst.dist, 4).L1ErrorTo(inst.dist),
            inst.certified_distance - 1e-9);
}

TEST(FarInstancesTest, ZigzagIsNotAKHistogram) {
  const FarInstance inst = MakeL1FarZigzag(64, 4, 0.2);
  EXPECT_GT(MinimalPieceCount(inst.dist), 4);
}

TEST(FarInstancesTest, WithinPieceZigzagIsCertifiedByL1OptimalDp) {
  const auto inst = MakeL1FarWithinPieceZigzag(128, 4, 0.3, 42);
  ASSERT_TRUE(inst.has_value());
  EXPECT_GE(inst->certified_distance, 0.3 * 1.05 - 1e-12);
  EXPECT_EQ(inst->norm, Norm::kL1);
  // The certificate is the exact class distance: explicit candidates can
  // only do worse.
  const auto opt = VOptimalHistogram(inst->dist, 4);
  EXPECT_GE(opt.histogram.L1ErrorTo(inst->dist), inst->certified_distance - 1e-9);
}

TEST(FarPairTest, MassShiftPairsAreExactlyCertified) {
  const auto pair = MakeFarPairMassShift(256, 4, 0.3, 7);
  ASSERT_TRUE(pair.has_value());
  EXPECT_GE(pair->certified_distance, 0.3);
  // Certification IS the exact distance.
  EXPECT_NEAR(pair->p.L1DistanceTo(pair->q), pair->certified_distance, 1e-12);
  // Both sides stay k-histograms on the same boundary structure.
  EXPECT_LE(MinimalPieceCount(pair->p), 4);
  EXPECT_LE(MinimalPieceCount(pair->q), 4);
}

TEST(FarPairTest, MassShiftNeedsAtLeastTwoPieces) {
  EXPECT_FALSE(MakeFarPairMassShift(256, 1, 0.3, 7).has_value());
}

TEST(FarPairTest, IndependentPairsAreExactlyCertified) {
  const auto pair = MakeFarPairIndependent(256, 4, 0.3, 11);
  ASSERT_TRUE(pair.has_value());
  EXPECT_GE(pair->certified_distance, 0.3);
  EXPECT_NEAR(pair->p.L1DistanceTo(pair->q), pair->certified_distance, 1e-12);
  EXPECT_LE(MinimalPieceCount(pair->p), 4);
  EXPECT_LE(MinimalPieceCount(pair->q), 4);
}

TEST(FarPairTest, PairsAreValidDistributions) {
  const auto pair = MakeFarPairMassShift(128, 3, 0.2, 5);
  ASSERT_TRUE(pair.has_value());
  for (const Distribution* d : {&pair->p, &pair->q}) {
    double total = 0.0;
    for (int64_t i = 0; i < d->n(); ++i) {
      EXPECT_GE(d->p(i), 0.0);
      total += d->p(i);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(FarInstancesTest, FarInstancesAreValidDistributions) {
  for (const auto& inst :
       {MakeL1FarZigzag(64, 2, 0.15), MakeL1FarZigzag(256, 8, 0.3)}) {
    double total = 0.0;
    for (int64_t i = 0; i < inst.dist.n(); ++i) {
      EXPECT_GE(inst.dist.p(i), 0.0);
      total += inst.dist.p(i);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace histk
