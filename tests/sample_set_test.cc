#include "sample/sample_set.h"

#include <vector>

#include <gtest/gtest.h>

#include "dist/generators.h"
#include "util/math_util.h"

namespace histk {
namespace {

// A fixed multiset over n=10: value -> occurrences.
std::vector<int64_t> FixedDraws() {
  return {0, 0, 0, 2, 2, 5, 5, 5, 5, 9, 3};  // occ: 0->3, 2->2, 3->1, 5->4, 9->1
}

int64_t BruteCount(const std::vector<int64_t>& draws, Interval I) {
  int64_t c = 0;
  for (int64_t v : draws) c += I.Contains(v) ? 1 : 0;
  return c;
}

uint64_t BruteCollisions(const std::vector<int64_t>& draws, int64_t n, Interval I) {
  std::vector<uint64_t> occ(static_cast<size_t>(n), 0);
  for (int64_t v : draws) ++occ[static_cast<size_t>(v)];
  uint64_t coll = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (I.Contains(i)) coll += PairCount(occ[static_cast<size_t>(i)]);
  }
  return coll;
}

class SampleSetBackendTest : public ::testing::TestWithParam<bool> {
 protected:
  // Builds with the dense backend (param=true) or forces sparse by using
  // FromDraws on a domain beyond the dense limit and mapping back.
  SampleSet Build(int64_t n, const std::vector<int64_t>& draws) {
    if (GetParam()) return SampleSet::FromDraws(n, draws);
    // Sparse: same data, domain inflated past the dense limit; interval
    // queries against the original domain still work since extra domain is
    // empty. We instead exercise the sparse path directly with huge n.
    return SampleSet::FromDraws(SampleSet::kDenseDomainLimit + n, draws);
  }
};

TEST_P(SampleSetBackendTest, CountMatchesBruteForceOnAllIntervals) {
  const auto draws = FixedDraws();
  const SampleSet s = Build(10, draws);
  for (int64_t lo = 0; lo < 10; ++lo) {
    for (int64_t hi = lo; hi < 10; ++hi) {
      EXPECT_EQ(s.Count(Interval(lo, hi)), BruteCount(draws, Interval(lo, hi)))
          << "[" << lo << "," << hi << "]";
    }
  }
}

TEST_P(SampleSetBackendTest, CollisionsMatchBruteForceOnAllIntervals) {
  const auto draws = FixedDraws();
  const SampleSet s = Build(10, draws);
  for (int64_t lo = 0; lo < 10; ++lo) {
    for (int64_t hi = lo; hi < 10; ++hi) {
      EXPECT_EQ(s.Collisions(Interval(lo, hi)),
                BruteCollisions(draws, 10, Interval(lo, hi)));
    }
  }
}

TEST_P(SampleSetBackendTest, EmptyIntervalYieldsZero) {
  const SampleSet s = Build(10, FixedDraws());
  EXPECT_EQ(s.Count(Interval::Empty()), 0);
  EXPECT_EQ(s.Collisions(Interval::Empty()), 0u);
}

TEST_P(SampleSetBackendTest, DistinctValuesSortedUnique) {
  const SampleSet s = Build(10, FixedDraws());
  EXPECT_EQ(s.distinct_values(), (std::vector<int64_t>{0, 2, 3, 5, 9}));
}

INSTANTIATE_TEST_SUITE_P(DenseAndSparse, SampleSetBackendTest, ::testing::Bool(),
                         [](const auto& info) { return info.param ? "Dense" : "Sparse"; });

TEST(SampleSetTest, FromCountsMatchesFromDraws) {
  const auto draws = FixedDraws();
  const SampleSet a = SampleSet::FromDraws(10, draws);
  std::vector<int64_t> counts(10, 0);
  for (int64_t v : draws) ++counts[static_cast<size_t>(v)];
  const SampleSet b = SampleSet::FromCounts(10, counts);
  EXPECT_EQ(a.m(), b.m());
  for (int64_t lo = 0; lo < 10; ++lo) {
    for (int64_t hi = lo; hi < 10; ++hi) {
      EXPECT_EQ(a.Count(Interval(lo, hi)), b.Count(Interval(lo, hi)));
      EXPECT_EQ(a.Collisions(Interval(lo, hi)), b.Collisions(Interval(lo, hi)));
    }
  }
}

TEST(SampleSetTest, SumSquaresEstimateExactValue) {
  // occ: {3,2,1,4,1}; coll = 3+1+0+6+0 = 10; m=11 -> C(11,2)=55.
  const SampleSet s = SampleSet::FromDraws(10, FixedDraws());
  EXPECT_DOUBLE_EQ(s.SumSquaresEstimate(Interval::Full(10)), 10.0 / 55.0);
  // Restricted to [0,2]: coll = 3 + 1 = 4.
  EXPECT_DOUBLE_EQ(s.SumSquaresEstimate(Interval(0, 2)), 4.0 / 55.0);
}

TEST(SampleSetTest, CondCollisionRateExactValue) {
  const SampleSet s = SampleSet::FromDraws(10, FixedDraws());
  // [0,2]: |S_I| = 5, coll = 4 -> 4 / C(5,2)=10.
  EXPECT_DOUBLE_EQ(s.CondCollisionRate(Interval(0, 2)).value(), 0.4);
  // Interval with one sample: no pairs.
  EXPECT_FALSE(s.CondCollisionRate(Interval(9, 9)).has_value());
  // Interval with zero samples.
  EXPECT_FALSE(s.CondCollisionRate(Interval(6, 8)).has_value());
}

TEST(SampleSetTest, CondCollisionRateIsOneOnSingletonSupport) {
  // All samples equal -> conditional collision rate is exactly 1.
  const SampleSet s = SampleSet::FromDraws(4, {2, 2, 2, 2, 2});
  EXPECT_DOUBLE_EQ(s.CondCollisionRate(Interval(0, 3)).value(), 1.0);
}

TEST(SampleSetTest, EstimatorConcentratesOnUniform) {
  // E[coll rate] = ||p||^2 = 1/n; check a big draw lands near it.
  const int64_t n = 64;
  const AliasSampler sampler(Distribution::Uniform(n));
  Rng rng(41);
  const SampleSet s = SampleSet::Draw(sampler, 200000, rng);
  EXPECT_NEAR(s.SumSquaresEstimate(Interval::Full(n)), 1.0 / 64.0, 0.002);
  EXPECT_NEAR(s.CondCollisionRate(Interval::Full(n)).value(), 1.0 / 64.0, 0.002);
}

TEST(SampleSetTest, EstimatorConcentratesOnSkewed) {
  const Distribution d = MakeZipf(32, 1.5);
  const AliasSampler sampler(d);
  Rng rng(42);
  const SampleSet s = SampleSet::Draw(sampler, 200000, rng);
  EXPECT_NEAR(s.SumSquaresEstimate(Interval::Full(32)), d.L2NormSquared(), 0.01);
  // Lemma 1 version on a sub-interval.
  EXPECT_NEAR(s.SumSquaresEstimate(Interval(0, 3)), d.SumSquares(Interval(0, 3)), 0.01);
}

TEST(SampleSetGroupTest, MedianEstimatesAreStable) {
  const Distribution d = MakeZipf(32, 1.0);
  const AliasSampler sampler(d);
  Rng rng(43);
  const SampleSetGroup g = SampleSetGroup::Draw(sampler, 9, 20000, rng);
  EXPECT_EQ(g.r(), 9);
  EXPECT_EQ(g.TotalSamples(), 9 * 20000);
  EXPECT_NEAR(g.MedianSumSquaresEstimate(Interval::Full(32)), d.L2NormSquared(), 0.01);
  const Distribution cond = d.Restrict(Interval(0, 7));
  EXPECT_NEAR(g.MedianCondCollisionRate(Interval(0, 7)), cond.L2NormSquared(), 0.01);
}

TEST(SampleSetGroupTest, CondRateZeroWhenNoSamplesInInterval) {
  // Point mass: intervals away from the atom see nothing -> median 0.
  const AliasSampler sampler(Distribution::PointMass(16, 0));
  Rng rng(44);
  const SampleSetGroup g = SampleSetGroup::Draw(sampler, 5, 100, rng);
  EXPECT_DOUBLE_EQ(g.MedianCondCollisionRate(Interval(8, 15)), 0.0);
}

TEST(SampleSetDeathTest, OutOfDomainDrawAborts) {
  EXPECT_DEATH(SampleSet::FromDraws(4, {0, 4}), "out of domain");
}

}  // namespace
}  // namespace histk
