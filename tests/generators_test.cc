#include "dist/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "histogram/ops.h"

namespace histk {
namespace {

TEST(GeneratorsTest, ZipfIsDecreasingAndNormalized) {
  const Distribution d = MakeZipf(100, 1.2);
  double total = 0.0;
  for (int64_t i = 0; i < d.n(); ++i) {
    total += d.p(i);
    if (i > 0) EXPECT_LE(d.p(i), d.p(i - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(GeneratorsTest, ZipfZeroSkewIsUniform) {
  const Distribution d = MakeZipf(10, 0.0);
  for (int64_t i = 0; i < 10; ++i) EXPECT_NEAR(d.p(i), 0.1, 1e-12);
}

TEST(GeneratorsTest, GaussianMixturePeaksAtMeans) {
  const Distribution d =
      MakeGaussianMixture(1000, {{0.25, 0.03, 1.0}, {0.75, 0.03, 1.0}});
  // Peaks near 250 and 750 dominate the valley at 500.
  EXPECT_GT(d.p(250), 5.0 * d.p(500));
  EXPECT_GT(d.p(750), 5.0 * d.p(500));
}

TEST(GeneratorsTest, GaussianMixtureUniformFloorGivesFullSupport) {
  const Distribution d = MakeGaussianMixture(256, {{0.5, 0.01, 1.0}}, 0.1);
  for (int64_t i = 0; i < d.n(); ++i) EXPECT_GT(d.p(i), 0.0);
}

TEST(GeneratorsTest, RandomKHistogramHasAtMostKPieces) {
  Rng rng(31);
  for (int64_t k : {1, 2, 5, 16}) {
    const HistogramSpec spec = MakeRandomKHistogram(128, k, rng);
    EXPECT_EQ(static_cast<int64_t>(spec.right_ends.size()), k);
    EXPECT_EQ(spec.right_ends.back(), 127);
    EXPECT_LE(MinimalPieceCount(spec.dist), k);
    EXPECT_TRUE(IsTilingKHistogram(spec.dist, k));
  }
}

TEST(GeneratorsTest, RandomKHistogramPiecesAreFlat) {
  Rng rng(32);
  const HistogramSpec spec = MakeRandomKHistogram(200, 7, rng);
  int64_t lo = 0;
  for (int64_t end : spec.right_ends) {
    EXPECT_TRUE(spec.dist.IsFlat(Interval(lo, end)));
    lo = end + 1;
  }
}

TEST(GeneratorsTest, StaircaseStructure) {
  const HistogramSpec spec = MakeStaircase(100, 4);
  EXPECT_EQ(spec.right_ends.size(), 4u);
  // Ascending piece values.
  EXPECT_LT(spec.dist.p(0), spec.dist.p(30));
  EXPECT_LT(spec.dist.p(30), spec.dist.p(60));
  EXPECT_LT(spec.dist.p(60), spec.dist.p(99));
  EXPECT_TRUE(IsTilingKHistogram(spec.dist, 4));
}

TEST(GeneratorsTest, NoisyStaysClose) {
  Rng rng(33);
  const Distribution base = Distribution::Uniform(64);
  const Distribution noisy = MakeNoisy(base, 0.1, rng);
  EXPECT_LT(base.L1DistanceTo(noisy), 0.12);  // noise 0.1 -> L1 <= ~0.1
  EXPECT_GT(base.L1DistanceTo(noisy), 0.0);
}

TEST(GeneratorsTest, NoisyZeroNoiseIsIdentity) {
  Rng rng(34);
  const Distribution base = MakeZipf(32, 1.0);
  EXPECT_NEAR(base.L1DistanceTo(MakeNoisy(base, 0.0, rng)), 0.0, 1e-12);
}

TEST(GeneratorsTest, SpikesIsolatedAndEqual) {
  const Distribution d = MakeSpikes(100, 10);
  int64_t nonzero = 0;
  for (int64_t i = 0; i < d.n(); ++i) {
    if (d.p(i) > 0) {
      ++nonzero;
      EXPECT_NEAR(d.p(i), 0.1, 1e-12);
      // Isolation: neighbours are zero.
      if (i > 0) EXPECT_DOUBLE_EQ(d.p(i - 1), 0.0);
      if (i + 1 < d.n()) EXPECT_DOUBLE_EQ(d.p(i + 1), 0.0);
    }
  }
  EXPECT_EQ(nonzero, 10);
}

TEST(GeneratorsTest, SpikesSingleSpikeIsPointMass) {
  const Distribution d = MakeSpikes(50, 1);
  EXPECT_DOUBLE_EQ(d.p(0), 1.0);
}

TEST(GeneratorsTest, ZigzagAlternatesAndNormalizes) {
  const Distribution d = MakeZigzagL1Far(64, 4, 0.2);
  double total = 0.0;
  for (int64_t i = 0; i < d.n(); ++i) total += d.p(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(d.p(0), d.p(1));
  EXPECT_GT(d.p(2), d.p(1));
}

TEST(GeneratorsTest, ZigzagAmplitudeFormula) {
  EXPECT_NEAR(ZigzagAmplitude(100, 0 + 10, 0.2, 1.0), 0.2 * 100.0 / 90.0, 1e-12);
}

TEST(GeneratorsDeathTest, ZigzagInfeasibleEpsAborts) {
  // eps close to 1 forces amplitude > 1.
  EXPECT_DEATH(MakeZigzagL1Far(64, 4, 0.95), "eps too large");
}

TEST(GeneratorsTest, WithinPieceZigzagPreservesPieceWeights) {
  Rng rng(35);
  const HistogramSpec spec = MakeRandomKHistogram(120, 5, rng);
  const Distribution z = MakeWithinPieceZigzag(spec, 0.5);
  int64_t lo = 0;
  for (int64_t end : spec.right_ends) {
    EXPECT_NEAR(z.Weight(Interval(lo, end)), spec.dist.Weight(Interval(lo, end)), 1e-9);
    lo = end + 1;
  }
}

TEST(GeneratorsTest, WithinPieceZigzagZeroDeltaIsIdentity) {
  Rng rng(36);
  const HistogramSpec spec = MakeRandomKHistogram(64, 3, rng);
  EXPECT_NEAR(spec.dist.L1DistanceTo(MakeWithinPieceZigzag(spec, 0.0)), 0.0, 1e-12);
}

}  // namespace
}  // namespace histk
