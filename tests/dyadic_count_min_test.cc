#include "stream/dyadic_count_min.h"

#include <gtest/gtest.h>

#include "dist/generators.h"
#include "dist/sampler.h"

namespace histk {
namespace {

TEST(CountMinTest, ExactForFewDistinctIds) {
  // With far fewer ids than the width, collisions are unlikely in every
  // row; the min is exact.
  CountMin cm(512, 5, 901);
  cm.Update(3, 10);
  cm.Update(100, 4);
  cm.Update(3, 1);
  EXPECT_EQ(cm.Estimate(3), 11);
  EXPECT_EQ(cm.Estimate(100), 4);
  EXPECT_EQ(cm.Estimate(7), 0);
}

TEST(CountMinTest, NeverUnderestimatesNonNegativeStreams) {
  CountMin cm(16, 4, 902);  // narrow: force collisions
  std::vector<int64_t> truth(300, 0);
  Rng rng(903);
  for (int i = 0; i < 5000; ++i) {
    const int64_t id = static_cast<int64_t>(rng.UniformInt(300));
    cm.Update(static_cast<uint64_t>(id), 1);
    ++truth[static_cast<size_t>(id)];
  }
  for (int64_t id = 0; id < 300; ++id) {
    EXPECT_GE(cm.Estimate(static_cast<uint64_t>(id)), truth[static_cast<size_t>(id)]);
  }
}

TEST(DyadicCountMinTest, RangeCountsMatchTruthOnModestStream) {
  const int64_t n = 1000;  // exercises the non-power-of-two padding
  DyadicCountMin sketch(n, 0.005, 0.01, 904);
  const Distribution d = MakeZipf(n, 1.1);
  const AliasSampler sampler(d);
  Rng rng(905);
  std::vector<int64_t> truth(static_cast<size_t>(n), 0);
  const int64_t stream = 50000;
  for (int64_t i = 0; i < stream; ++i) {
    const int64_t v = sampler.Draw(rng);
    sketch.Update(v);
    ++truth[static_cast<size_t>(v)];
  }
  EXPECT_EQ(sketch.total(), stream);

  Rng qrng(906);
  for (int q = 0; q < 40; ++q) {
    const int64_t lo = qrng.UniformInRange(0, n - 1);
    const int64_t hi = qrng.UniformInRange(lo, n - 1);
    int64_t expect = 0;
    for (int64_t i = lo; i <= hi; ++i) expect += truth[static_cast<size_t>(i)];
    const int64_t got = sketch.RangeCount(Interval(lo, hi));
    // CM overestimates by <= eps_cm * total per dyadic node; 2 log n nodes.
    EXPECT_GE(got, expect);
    EXPECT_LE(got - expect, static_cast<int64_t>(0.005 * 2 * 11 * stream))
        << "[" << lo << "," << hi << "]";
  }
}

TEST(DyadicCountMinTest, FullRangeIsTotal) {
  DyadicCountMin sketch(64, 0.01, 0.01, 907);
  for (int64_t i = 0; i < 64; ++i) sketch.Update(i, i + 1);
  EXPECT_EQ(sketch.RangeCount(Interval::Full(64)), sketch.total());
  EXPECT_EQ(sketch.RangeCount(Interval::Empty()), 0);
}

TEST(DyadicCountMinTest, QuantilesTrackTruth) {
  const int64_t n = 512;
  DyadicCountMin sketch(n, 0.002, 0.01, 908);
  const AliasSampler sampler(Distribution::Uniform(n));
  Rng rng(909);
  for (int64_t i = 0; i < 100000; ++i) sketch.Update(sampler.Draw(rng));
  // Uniform: q-quantile ~ q*n.
  for (double q : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(static_cast<double>(sketch.Quantile(q)), q * static_cast<double>(n),
                0.05 * static_cast<double>(n));
  }
}

TEST(DyadicCountMinTest, EquiDepthEndsBalanced) {
  const int64_t n = 256;
  DyadicCountMin sketch(n, 0.002, 0.01, 910);
  const AliasSampler sampler(MakeZipf(n, 1.0));
  Rng rng(911);
  for (int64_t i = 0; i < 100000; ++i) sketch.Update(sampler.Draw(rng));
  const auto ends = sketch.EquiDepthEnds(8);
  EXPECT_LE(ends.size(), 8u);
  EXPECT_EQ(ends.back(), n - 1);
  for (size_t j = 1; j < ends.size(); ++j) EXPECT_GT(ends[j], ends[j - 1]);
}

TEST(CountMinTest, WidthOneSketchCollapsesToRowTotals) {
  // Degenerate geometry: one counter per row, so every id collides and each
  // estimate is the whole stream mass. Also the cheapest end-to-end check of
  // the gated row-conservation invariant (all rows hold the same counter).
  CountMin cm(1, 3, 913);
  cm.Update(0, 4);
  cm.Update(99, 6);
  EXPECT_EQ(cm.Estimate(0), 10);
  EXPECT_EQ(cm.Estimate(12345), 10);
}

TEST(DyadicCountMinTest, SingletonDomain) {
  // n = 1 pads to one leaf and one level; every query collapses to total.
  DyadicCountMin sketch(1, 0.1, 0.1, 914);
  sketch.Update(0, 7);
  EXPECT_EQ(sketch.total(), 7);
  EXPECT_EQ(sketch.RangeCount(Interval::Full(1)), 7);
  EXPECT_EQ(sketch.Quantile(0.0), 0);
  EXPECT_EQ(sketch.Quantile(1.0), 0);
  EXPECT_EQ(sketch.EquiDepthEnds(4), std::vector<int64_t>{0});
}

TEST(DyadicCountMinTest, EmptySketchQueriesAreBenign) {
  // No updates: counts are zero everywhere and quantiles resolve to the
  // leftmost element instead of reading uninitialized state.
  const DyadicCountMin sketch(32, 0.1, 0.1, 915);
  EXPECT_EQ(sketch.total(), 0);
  EXPECT_EQ(sketch.RangeCount(Interval::Full(32)), 0);
  EXPECT_EQ(sketch.Quantile(0.5), 0);
  EXPECT_EQ(sketch.EquiDepthEnds(3).back(), 31);
}

TEST(DyadicCountMinTest, BoundaryQuantilesStayInDomain) {
  // Wide sketch: exact estimates, so the boundary quantiles are exact too.
  DyadicCountMin sketch(128, 0.002, 0.01, 916);
  for (int64_t i = 0; i < 128; ++i) sketch.Update(i);
  EXPECT_EQ(sketch.Quantile(0.0), 0);
  EXPECT_EQ(sketch.Quantile(1.0), 127);
}

TEST(DyadicCountMinDeathTest, RejectsOutOfDomain) {
  DyadicCountMin sketch(16, 0.1, 0.1, 912);
  EXPECT_DEATH(sketch.Update(16), "i >= 0");
}

TEST(DyadicCountMinDeathTest, RejectsDegenerateGeometry) {
  EXPECT_DEATH(DyadicCountMin(0, 0.1, 0.1, 1), "n >= 1");
  EXPECT_DEATH(DyadicCountMin(16, 0.0, 0.1, 1), "eps");
  EXPECT_DEATH(DyadicCountMin(16, 0.1, 1.0, 1), "delta");
  EXPECT_DEATH(CountMin(0, 1, 1), "width");
}

}  // namespace
}  // namespace histk
