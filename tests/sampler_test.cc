#include "dist/sampler.h"

#include <vector>

#include <gtest/gtest.h>

#include "dist/generators.h"

namespace histk {
namespace {

// Chi-square statistic of observed counts against a pmf.
double ChiSquare(const Distribution& d, const std::vector<int64_t>& draws) {
  std::vector<int64_t> counts(static_cast<size_t>(d.n()), 0);
  for (int64_t v : draws) ++counts[static_cast<size_t>(v)];
  double chi2 = 0.0;
  for (int64_t i = 0; i < d.n(); ++i) {
    const double expect = d.p(i) * static_cast<double>(draws.size());
    if (expect > 0) {
      const double delta = static_cast<double>(counts[static_cast<size_t>(i)]) - expect;
      chi2 += delta * delta / expect;
    } else {
      EXPECT_EQ(counts[static_cast<size_t>(i)], 0) << "sampled a zero-probability element";
    }
  }
  return chi2;
}

TEST(SamplerTest, AliasMatchesDistributionChiSquare) {
  const Distribution d = Distribution::FromWeights({1, 2, 3, 4, 5, 5, 4, 3, 2, 1});
  const AliasSampler s(d);
  Rng rng(21);
  // 9 dof; 99.9% quantile ~ 27.9.
  EXPECT_LT(ChiSquare(d, s.DrawMany(200000, rng)), 30.0);
}

TEST(SamplerTest, CdfMatchesDistributionChiSquare) {
  const Distribution d = Distribution::FromWeights({1, 2, 3, 4, 5, 5, 4, 3, 2, 1});
  const CdfSampler s(d);
  Rng rng(22);
  EXPECT_LT(ChiSquare(d, s.DrawMany(200000, rng)), 30.0);
}

TEST(SamplerTest, AliasNeverDrawsZeroMassElements) {
  const Distribution d = Distribution::FromWeights({0, 1, 0, 1, 0});
  const AliasSampler s(d);
  Rng rng(23);
  for (int64_t v : s.DrawMany(10000, rng)) {
    EXPECT_TRUE(v == 1 || v == 3) << v;
  }
}

TEST(SamplerTest, PointMassAlwaysSameElement) {
  const AliasSampler s(Distribution::PointMass(100, 42));
  Rng rng(24);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(s.Draw(rng), 42);
}

TEST(SamplerTest, DrawManySizeAndDomain) {
  const AliasSampler s(Distribution::Uniform(16));
  Rng rng(25);
  const auto draws = s.DrawMany(5000, rng);
  EXPECT_EQ(draws.size(), 5000u);
  for (int64_t v : draws) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 16);
  }
}

TEST(SamplerTest, AliasAndCdfAgreeOnSkewedDistribution) {
  const Distribution d = MakeZipf(64, 1.5);
  const AliasSampler alias(d);
  const CdfSampler cdf(d);
  Rng r1(26), r2(26);
  // Both should match the pmf on the head elements to ~1%.
  const auto da = alias.DrawMany(300000, r1);
  const auto dc = cdf.DrawMany(300000, r2);
  for (int64_t head = 0; head < 3; ++head) {
    auto freq = [&](const std::vector<int64_t>& v) {
      int64_t c = 0;
      for (int64_t x : v) c += (x == head);
      return static_cast<double>(c) / static_cast<double>(v.size());
    };
    EXPECT_NEAR(freq(da), d.p(head), 0.01);
    EXPECT_NEAR(freq(dc), d.p(head), 0.01);
  }
}

TEST(SamplerTest, SingleElementDomain) {
  const AliasSampler s(Distribution::Uniform(1));
  Rng rng(27);
  EXPECT_EQ(s.Draw(rng), 0);
  EXPECT_EQ(s.n(), 1);
}

TEST(SamplerTest, DeterministicGivenSeed) {
  const AliasSampler s(Distribution::Uniform(32));
  Rng a(99), b(99);
  EXPECT_EQ(s.DrawMany(100, a), s.DrawMany(100, b));
}

}  // namespace
}  // namespace histk
